"""Soundness checks: cross-validate analytic bounds against the simulator.

The paper's central claim is an *ordering*: for every legal arrival
pattern, the simulated (exact) behavior must stay on the safe side of the
analytic bounds.  :func:`cross_validate` turns that claim into executable
checks on one concrete system:

* **response bounds** -- every simulated end-to-end response of an
  analyzed instance is ``<=`` the method's worst-case bound (Theorems
  1/4 and the stationary network-calculus bound);
* **hop brackets** -- simulated per-hop completions stay inside the
  per-instance envelopes the analyses derive: above the Lemma-2 earliest
  envelope (dedicated-processor floors), below the Lemma-1 / Theorem-5/6
  latest-departure bounds;
* **envelopes** -- the release trace each job actually produces conforms
  to the arrival envelope :func:`repro.curves.envelope.envelope_of`
  declares for its process (the HeRTA-style event-bound consistency
  check).

Every failed comparison becomes a structured :class:`Violation` record;
an empty violation list on a fuzzed corpus is the audit's evidence of
soundness, and a non-empty one (e.g. from the deliberate corruption mode
of :mod:`repro.audit.faults`) feeds the counterexample shrinker.

The simulation horizon is capped (``sim_cap``): checking a *prefix* of
the analyzed instances is still a valid soundness check, and truncating
later arrivals can only lower observed responses -- never manufacture a
false violation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..analysis import METHODS
from ..analysis.base import AnalysisError, AnalysisResult, _json_float
from ..analysis.hopbounds import apply_departure_floors
from ..analysis.horizon import HorizonConfig
from ..curves import audit_checks
from ..curves.envelope import envelope_of
from ..model.system import SchedulingPolicy, System
from ..obs.metrics import inc as _metric_inc
from ..obs.trace import trace_span
from ..sim import simulate

__all__ = [
    "AUDIT_METHODS",
    "VIOLATION_SCHEMA_VERSION",
    "Violation",
    "CrossValidation",
    "cross_validate",
    "make_audit_analyzer",
    "verify_trace_in_envelope",
]

#: All registered analysis methods, in registry order.
AUDIT_METHODS = tuple(METHODS)

#: Version tag embedded in every serialized violation record.
VIOLATION_SCHEMA_VERSION = 1

#: Methods whose ``SubjobResult.completion_times`` is the hop's *own*
#: exact completion (vs. the compositional family, where hop ``j`` stores
#: the latest-arrival envelope, i.e. hop ``j-1``'s departure bound).
_EXACT_HOP_METHODS = frozenset({"SPP/Exact"})

#: Default relative/absolute tolerance for bound comparisons.  Bounds and
#: simulated times accumulate independent float error; a violation must
#: clear this margin to count.
DEFAULT_TOL = 1e-6


@dataclass
class Violation:
    """One failed soundness comparison, JSON-ready.

    ``kind`` is one of ``response_bound``, ``hop_upper``, ``hop_lower``,
    ``envelope`` or ``physical_floor``; ``observed``/``bound`` carry the
    two sides of the failed comparison when they are meaningful.
    """

    kind: str
    method: str
    job_id: Optional[str] = None
    instance: Optional[int] = None
    hop: Optional[int] = None
    observed: Optional[float] = None
    bound: Optional[float] = None
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": VIOLATION_SCHEMA_VERSION,
            "kind": self.kind,
            "method": self.method,
            "job_id": self.job_id,
            "instance": self.instance,
            "hop": self.hop,
            "observed": _json_float(self.observed)
            if self.observed is not None
            else None,
            "bound": _json_float(self.bound) if self.bound is not None else None,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Violation":
        return cls(
            kind=data["kind"],
            method=data.get("method", ""),
            job_id=data.get("job_id"),
            instance=data.get("instance"),
            hop=data.get("hop"),
            observed=data.get("observed"),
            bound=data.get("bound"),
            detail=data.get("detail", ""),
        )


@dataclass
class CrossValidation:
    """Outcome of auditing one system across methods."""

    violations: List[Violation] = field(default_factory=list)
    n_checks: int = 0  #: individual comparisons performed
    skipped: Dict[str, str] = field(default_factory=dict)  #: method -> reason
    errors: Dict[str, str] = field(default_factory=dict)  #: method -> exception
    results: Dict[str, AnalysisResult] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "n_checks": self.n_checks,
            "violations": [v.to_dict() for v in self.violations],
            "skipped": dict(self.skipped),
            "errors": dict(self.errors),
        }


def make_audit_analyzer(
    method: str,
    horizon: Optional[HorizonConfig] = None,
    options=None,
):
    """Instantiate a method with per-hop artifacts retained when supported.

    The audit's hop-bracket checks need ``keep_curves=True``; analyzers
    without that knob (holistic, fixpoint, stationary) are constructed
    plainly and contribute only end-to-end checks.  ``options`` threads
    :class:`~repro.analysis.AnalysisOptions` through, so a campaign can
    audit the *compacted* analysis pipeline: compaction only loosens
    bounds, so every simulated response must still fall inside them.
    """
    cls = METHODS[method]
    try:
        return cls(horizon, keep_curves=True, options=options)
    except TypeError:
        return cls(horizon, options=options)


def verify_trace_in_envelope(
    times: Sequence[float],
    envelope,
    tol: float = 1e-9,
    max_pairs: int = 2_000_000,
) -> Optional[str]:
    """Check a release trace against an arrival envelope.

    Verifies the defining property ``count(window) <= alpha(len(window))``
    for every window spanned by two releases (sufficient: the maximal
    count over windows of any length is attained on such a window).
    Returns ``None`` when the trace conforms, else a description of the
    first offending window.  Quadratic in the trace length; ``max_pairs``
    guards against accidental quadratic blowups on huge traces.
    """
    ts = np.sort(np.asarray(list(times), dtype=float))
    n = ts.size
    if n * n > max_pairs:
        raise ValueError(
            f"trace too long for pairwise envelope verification ({n} releases)"
        )
    for i in range(n):
        windows = ts[i:] - ts[i]
        counts = np.arange(1, n - i + 1, dtype=float)
        # Evaluate the (right-continuous) envelope a hair to the right of
        # the window length: float error in ``t_j - t_i`` otherwise lands
        # just below a staircase jump and misses a whole step.
        slack = tol + 1e-9 * np.abs(windows)
        allowed = np.atleast_1d(envelope.value(windows + slack))
        over = counts > allowed + tol
        if np.any(over):
            j = int(np.argmax(over))
            return (
                f"{int(counts[j])} releases in window [{ts[i]:g}, "
                f"{ts[i + j]:g}] but envelope allows {allowed[j]:g}"
            )
    return None


def _effective_policy(analyzer) -> Optional[SchedulingPolicy]:
    """The uniform policy an analyzer's bounds refer to, or None (own)."""
    return getattr(analyzer, "policy", None)


def _group_key(policy: Optional[SchedulingPolicy]) -> str:
    return policy.value if policy is not None else "own"


def _sim_system(system: System, policy: Optional[SchedulingPolicy]) -> System:
    if policy is None:
        return system
    return System(system.job_set, policy)


def _report_window(analyzer, result: AnalysisResult) -> float:
    """Length of the window whose instances the result's bounds cover."""
    if not math.isfinite(result.horizon):
        return math.inf
    cfg = getattr(analyzer, "horizon", None)
    fraction = getattr(cfg, "analyze_fraction", 1.0)
    return result.horizon * fraction


def _exceeds(observed: float, bound: float, tol: float) -> bool:
    return observed > bound + max(tol, tol * abs(bound))


def _check_response_bounds(
    method: str,
    result: AnalysisResult,
    sim,
    horizon_free: bool,
    out: CrossValidation,
    tol: float,
) -> None:
    for job_id, er in result.jobs.items():
        trace = sim.jobs.get(job_id)
        if trace is None:
            continue
        for rec in trace.records:
            if not rec.finished:
                continue
            if not horizon_free and rec.instance > er.n_instances:
                continue
            out.n_checks += 1
            if _exceeds(rec.response, er.wcrt, tol):
                out.violations.append(
                    Violation(
                        kind="response_bound",
                        method=method,
                        job_id=job_id,
                        instance=rec.instance,
                        observed=rec.response,
                        bound=er.wcrt,
                        detail=(
                            f"simulated response {rec.response:.9g} exceeds "
                            f"the {method} bound {er.wcrt:.9g}"
                        ),
                    )
                )


def _check_hop_brackets(
    method: str,
    result: AnalysisResult,
    sim,
    out: CrossValidation,
    tol: float,
) -> None:
    """Per-hop bracket checks from the analyzer's own retained envelopes."""
    exact = method in _EXACT_HOP_METHODS
    for job_id, er in result.jobs.items():
        if not er.hops:
            continue
        trace = sim.jobs.get(job_id)
        if trace is None:
            continue
        for rec in trace.records:
            if not rec.finished or rec.instance > er.n_instances:
                continue
            m = rec.instance - 1
            if exact:
                # completion_times[j] is hop j's own exact completion.
                for j, hop in enumerate(er.hops):
                    comp = hop.completion_times
                    if (
                        comp is None
                        or m >= len(comp)
                        or j >= len(rec.hop_completions)
                    ):
                        continue
                    bound = float(comp[m])
                    if not math.isfinite(bound):
                        continue
                    out.n_checks += 1
                    if _exceeds(rec.hop_completions[j], bound, tol):
                        out.violations.append(
                            Violation(
                                kind="hop_upper",
                                method=method,
                                job_id=job_id,
                                instance=rec.instance,
                                hop=j,
                                observed=rec.hop_completions[j],
                                bound=bound,
                                detail=(
                                    f"simulated hop-{j} completion exceeds "
                                    f"the exact per-instance completion time"
                                ),
                            )
                        )
            else:
                # Compositional family: hop j stores the bracket on the
                # *arrival* at hop j, i.e. on hop j-1's departure --
                # arrival_times is the Lemma-2 earliest envelope,
                # completion_times the Theorem-5/6 latest bound.
                for j in range(1, len(er.hops)):
                    hop = er.hops[j]
                    if j - 1 >= len(rec.hop_completions):
                        continue
                    observed = rec.hop_completions[j - 1]
                    late = hop.completion_times
                    if late is not None and m < len(late):
                        bound = float(late[m])
                        if math.isfinite(bound):
                            out.n_checks += 1
                            if _exceeds(observed, bound, tol):
                                out.violations.append(
                                    Violation(
                                        kind="hop_upper",
                                        method=method,
                                        job_id=job_id,
                                        instance=rec.instance,
                                        hop=j - 1,
                                        observed=observed,
                                        bound=bound,
                                        detail=(
                                            f"simulated hop-{j - 1} completion "
                                            f"exceeds the latest-departure bound"
                                        ),
                                    )
                                )
                    early = hop.arrival_times
                    if early is not None and m < len(early):
                        floor = float(early[m])
                        out.n_checks += 1
                        if _exceeds(floor, observed, tol):
                            out.violations.append(
                                Violation(
                                    kind="hop_lower",
                                    method=method,
                                    job_id=job_id,
                                    instance=rec.instance,
                                    hop=j - 1,
                                    observed=observed,
                                    bound=floor,
                                    detail=(
                                        f"simulated hop-{j - 1} completion "
                                        f"precedes the Lemma-2 earliest envelope"
                                    ),
                                )
                            )


def _check_physical_floors(
    system: System, sim, out: CrossValidation, tol: float
) -> None:
    """Method-independent lower bracket: dedicated-processor floors.

    No schedule can serve instance ``m`` at hop ``j`` before the chained
    Lemma-2 recursion ``dep_m = max(arr_m, dep_{m-1}) + wcet`` from its
    nominal releases -- valid under every policy, jitter only delays.
    """
    for job in system.jobs:
        trace = sim.jobs.get(job.job_id)
        if trace is None or not trace.records:
            continue
        releases = np.asarray([r.release for r in trace.records], dtype=float)
        early = releases
        for j, sub in enumerate(job.subjobs):
            floors = apply_departure_floors(early + sub.wcet, early, sub.wcet)
            for m, rec in enumerate(trace.records):
                if not rec.finished or j >= len(rec.hop_completions):
                    continue
                out.n_checks += 1
                if _exceeds(floors[m], rec.hop_completions[j], tol):
                    out.violations.append(
                        Violation(
                            kind="physical_floor",
                            method="",
                            job_id=job.job_id,
                            instance=rec.instance,
                            hop=j,
                            observed=rec.hop_completions[j],
                            bound=float(floors[m]),
                            detail=(
                                f"simulated hop-{j} completion precedes the "
                                f"dedicated-processor floor"
                            ),
                        )
                    )
            early = floors


def _check_envelopes(
    system: System, window: float, out: CrossValidation, tol: float
) -> None:
    for job in system.jobs:
        times = job.arrivals.release_times(window)
        if len(times) == 0:
            continue
        env = envelope_of(job.arrivals, horizon=max(window, 200.0))
        out.n_checks += 1
        problem = verify_trace_in_envelope(times, env, tol)
        if problem:
            out.violations.append(
                Violation(
                    kind="envelope",
                    method="",
                    job_id=job.job_id,
                    detail=(
                        f"release trace escapes the declared "
                        f"{type(job.arrivals).__name__} envelope: {problem}"
                    ),
                )
            )


def cross_validate(
    system: System,
    methods: Sequence[str] = AUDIT_METHODS,
    horizon: Optional[HorizonConfig] = None,
    sim_cap: float = 300.0,
    tol: float = DEFAULT_TOL,
    jitter_offsets: Optional[Dict[str, Any]] = None,
    analyzers: Optional[Dict[str, Any]] = None,
    check_envelopes: bool = True,
    options=None,
) -> CrossValidation:
    """Audit one system: run analyses + simulations, assert the ordering.

    Parameters
    ----------
    system:
        The system under audit (priorities already assigned where needed).
    methods:
        Method names to audit (default: all registered methods).
    horizon:
        Optional :class:`HorizonConfig` applied to every analyzer.
    sim_cap:
        Upper limit on the simulated window.  A shorter simulation checks
        a prefix of the analyzed instances -- sound, never a false
        violation -- while keeping dense systems affordable.
    tol:
        Relative/absolute tolerance a violation must clear.
    jitter_offsets:
        Adversarial per-instance release offsets handed to the simulator
        (see :func:`repro.sim.simulate`).
    analyzers:
        Per-method analyzer instance overrides -- the fault injector uses
        this to swap in a :class:`~repro.audit.faults.CorruptedAnalyzer`.
    check_envelopes:
        Also verify each job's release trace against its declared arrival
        envelope.
    options:
        :class:`~repro.analysis.AnalysisOptions` applied to every
        analyzer (unless overridden via ``analyzers``); used to audit the
        compacted/warm-started pipeline against simulation.

    Methods that reject the system (``AnalysisError``: wrong policy mix,
    aperiodic jobs for the holistic baseline, jitter for the exact
    analysis) are recorded under ``skipped``; unexpected exceptions under
    ``errors``; neither counts as a soundness violation.  Curve invariant
    checking (:func:`repro.curves.set_audit_checks`) is active for the
    whole call.
    """
    out = CrossValidation()
    with audit_checks():
        instances: Dict[str, Any] = {}
        for method in methods:
            analyzer = (
                analyzers[method]
                if analyzers is not None and method in analyzers
                else make_audit_analyzer(method, horizon, options=options)
            )
            instances[method] = analyzer
            with trace_span("audit.method", method=method) as span:
                try:
                    out.results[method] = analyzer.analyze(system)
                    span.set_attrs(outcome="analyzed")
                except AnalysisError as exc:
                    out.skipped[method] = str(exc)
                    span.set_attrs(outcome="skipped")
                except Exception as exc:  # noqa: BLE001 - audit must not die
                    out.errors[method] = f"{type(exc).__name__}: {exc}"
                    span.set_attrs(outcome="error")

        # Group analyzed methods by the policy their bounds refer to; one
        # simulation serves every method in a group.
        groups: Dict[str, List[str]] = {}
        for method, result in out.results.items():
            key = _group_key(_effective_policy(instances[method]))
            groups.setdefault(key, []).append(method)

        for key, group_methods in groups.items():
            windows = []
            for method in group_methods:
                r = _report_window(instances[method], out.results[method])
                windows.append(sim_cap if math.isinf(r) else min(r, sim_cap))
            window = max(windows)
            if window <= 0:
                continue
            policy = None if key == "own" else SchedulingPolicy(key)
            with trace_span("audit.sim", group=key, window=window):
                sim = simulate(
                    _sim_system(system, policy),
                    horizon=window,
                    report_window=window,
                    jitter_offsets=jitter_offsets,
                )
            for method in group_methods:
                result = out.results[method]
                if not result.drained and not math.isinf(result.horizon):
                    out.skipped.setdefault(
                        method, "analysis did not drain; bounds not final"
                    )
                    continue
                horizon_free = not math.isfinite(result.horizon)
                _check_response_bounds(
                    method, result, sim, horizon_free, out, tol
                )
                _check_hop_brackets(method, result, sim, out, tol)
            _check_physical_floors(system, sim, out, tol)

        if check_envelopes:
            window = min(sim_cap, 200.0)
            _check_envelopes(system, window, out, tol)
    _metric_inc("repro_audit_checks_total", out.n_checks)
    for violation in out.violations:
        _metric_inc("repro_audit_violations_total", kind=violation.kind)
    return out

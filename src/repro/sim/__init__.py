"""Discrete-event simulator (Direct Synchronization, SPP/SPNP/FCFS)."""

from .distributed import simulate
from .gantt import ExecutionSlice, ExecutionTrace, record_execution, render_gantt
from .engine import Event, EventQueue, SimClock
from .processor import InstanceTask, ProcessorSim
from .trace import InstanceRecord, JobTrace, SimulationResult

__all__ = [
    "ExecutionSlice",
    "ExecutionTrace",
    "record_execution",
    "render_gantt",
    "simulate",
    "Event",
    "EventQueue",
    "SimClock",
    "InstanceTask",
    "ProcessorSim",
    "InstanceRecord",
    "JobTrace",
    "SimulationResult",
]

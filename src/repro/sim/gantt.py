"""Execution traces and ASCII Gantt charts for simulated schedules.

:func:`record_execution` re-runs a simulation while capturing every
contiguous execution interval per processor, and :func:`render_gantt`
draws them as a text chart -- handy for inspecting preemptions, blocking
and FCFS ordering in examples, tests and bug reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from ..model.system import System
from .distributed import simulate
from .processor import InstanceTask, ProcessorSim
from .trace import SimulationResult

__all__ = ["ExecutionSlice", "ExecutionTrace", "record_execution", "render_gantt"]


@dataclass(frozen=True)
class ExecutionSlice:
    """One contiguous execution interval of one subjob instance."""

    processor: Hashable
    job_id: str
    hop: int
    instance: int
    start: float
    end: float

    @property
    def length(self) -> float:
        return self.end - self.start


@dataclass
class ExecutionTrace:
    """All execution slices of a simulation run, grouped by processor."""

    slices: List[ExecutionSlice] = field(default_factory=list)

    def on(self, processor: Hashable) -> List[ExecutionSlice]:
        return sorted(
            (s for s in self.slices if s.processor == processor),
            key=lambda s: s.start,
        )

    def processors(self) -> List[Hashable]:
        return sorted({s.processor for s in self.slices}, key=str)

    def busy_time(self, processor: Hashable) -> float:
        return sum(s.length for s in self.on(processor))

    def preemption_count(self, job_id: Optional[str] = None) -> int:
        """Number of split executions (an instance running in >1 slice)."""
        seen: Dict[Tuple, int] = {}
        for s in self.slices:
            if job_id is not None and s.job_id != job_id:
                continue
            key = (s.processor, s.job_id, s.hop, s.instance)
            seen[key] = seen.get(key, 0) + 1
        return sum(v - 1 for v in seen.values() if v > 1)


def record_execution(
    system: System, horizon: float, **kwargs
) -> Tuple[SimulationResult, ExecutionTrace]:
    """Simulate while recording per-processor execution slices.

    Implemented by patching the processor start/stop hooks for the
    duration of the run; the returned :class:`SimulationResult` is
    identical to a plain :func:`repro.sim.simulate` call.
    """
    trace = ExecutionTrace()
    original_start = ProcessorSim._start
    original_preempt = ProcessorSim._preempt
    original_complete = ProcessorSim._complete
    open_slices: Dict[int, Tuple[Hashable, InstanceTask, float]] = {}

    def patched_start(self, task, now):
        open_slices[id(self)] = (self.name, task, now)
        original_start(self, task, now)

    def close_slice(self, now):
        entry = open_slices.pop(id(self), None)
        if entry is not None:
            name, task, start = entry
            if now > start:
                trace.slices.append(
                    ExecutionSlice(
                        processor=name,
                        job_id=task.job_id,
                        hop=task.hop,
                        instance=task.instance,
                        start=start,
                        end=now,
                    )
                )

    def patched_preempt(self, now):
        close_slice(self, now)
        original_preempt(self, now)

    def patched_complete(self, now):
        close_slice(self, now)
        original_complete(self, now)

    ProcessorSim._start = patched_start
    ProcessorSim._preempt = patched_preempt
    ProcessorSim._complete = patched_complete
    try:
        result = simulate(system, horizon, **kwargs)
    finally:
        ProcessorSim._start = original_start
        ProcessorSim._preempt = original_preempt
        ProcessorSim._complete = original_complete
    return result, trace


def render_gantt(
    trace: ExecutionTrace,
    t_end: Optional[float] = None,
    width: int = 72,
) -> str:
    """Draw the execution trace as an ASCII Gantt chart.

    Each processor gets one row; each slice is drawn with the first
    letter of its job id (uppercased), idle time as ``.``.  Overlapping
    labels within one cell show the later-starting slice.
    """
    if not trace.slices:
        return "(empty trace)"
    if t_end is None:
        t_end = max(s.end for s in trace.slices)
    scale = width / t_end if t_end > 0 else 1.0
    lines = [f"Gantt chart, t in [0, {t_end:g}], one column ~ {t_end / width:.3g}"]
    for proc in trace.processors():
        row = ["."] * width
        for s in trace.on(proc):
            if s.start >= t_end:
                continue
            lo = int(s.start * scale)
            hi = max(lo + 1, min(width, int(math.ceil(s.end * scale))))
            label = (s.job_id[:1] or "?").upper()
            for i in range(lo, min(hi, width)):
                row[i] = label
        lines.append(f"{str(proc):>8s} |{''.join(row)}|")
    legend = {}
    for s in trace.slices:
        legend.setdefault((s.job_id[:1] or "?").upper(), s.job_id)
    lines.append(
        "          " + "  ".join(f"{k}={v}" for k, v in sorted(legend.items()))
    )
    return "\n".join(lines)

"""Discrete-event simulation core.

A minimal but exact event engine: a priority queue of timestamped events
with stable FIFO ordering among equal timestamps, plus support for
cancelling scheduled events (needed when a running subjob instance is
preempted and its completion event becomes stale).
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = ["Event", "EventQueue", "SimClock"]


@dataclass(order=True)
class Event:
    """A scheduled occurrence.  Ordering: time, then insertion sequence."""

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        self.cancelled = True


class EventQueue:
    """Heap-backed event queue with cancellation."""

    def __init__(self) -> None:
        self._heap: list = []
        self._counter = itertools.count()

    def schedule(self, time: float, action: Callable[[], None]) -> Event:
        if not math.isfinite(time):
            raise ValueError(f"cannot schedule an event at t={time}")
        ev = Event(time=time, seq=next(self._counter), action=action)
        heapq.heappush(self._heap, ev)
        return ev

    def __len__(self) -> int:
        return len(self._heap)

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or None."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def pop(self) -> Optional[Event]:
        """Pop the next live event, or None when empty."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if not ev.cancelled:
                return ev
        return None


class SimClock:
    """Shared simulation clock (monotonically advanced by the driver)."""

    #: Relative tolerance for backward steps.  Event timestamps are sums of
    #: floats, so two events meant to be simultaneous can differ by a few
    #: ulps -- which at large ``now`` is far bigger than any absolute
    #: epsilon.  The tolerance therefore scales with the clock value (with
    #: an absolute floor for times near zero).
    REL_TOL = 1e-9

    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, t: float) -> None:
        if t < self.now - max(1e-12, self.REL_TOL * abs(self.now)):
            raise RuntimeError(f"time going backwards: {t} < {self.now}")
        self.now = max(self.now, t)

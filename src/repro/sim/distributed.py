"""Distributed-system simulation under Direct Synchronization.

Executes a :class:`~repro.model.system.System` exactly as modeled in the
paper (Section 3.2): every job instance is released at its first subjob's
processor by the job's arrival process; when an instance of subjob
``T_{k,j}`` completes, the corresponding instance of ``T_{k,j+1}`` is
released immediately on its processor (Direct Synchronization Protocol);
each processor schedules ready instances by its policy (SPP / SPNP /
FCFS).  Inter-processor communication time is zero, matching the paper's
assumption of constant (ignored) overhead.

The simulator is used by the test suite to validate the analyses: every
response-time bound must dominate the corresponding simulated response.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from ..model.system import System
from .engine import EventQueue
from .processor import InstanceTask, ProcessorSim
from .trace import InstanceRecord, JobTrace, SimulationResult

__all__ = ["simulate"]


def simulate(
    system: System,
    horizon: float,
    report_window: Optional[float] = None,
    max_events: int = 10_000_000,
    jitter_rng=None,
    jitter_offsets: Optional[Dict[str, object]] = None,
) -> SimulationResult:
    """Run the system for all instances released in ``[0, horizon)``.

    The simulation continues past the horizon until every released
    instance has completed (no new instances are released after the
    horizon), so all responses are exact.

    Parameters
    ----------
    system:
        The system to execute.  Priorities must be assigned on SPP/SPNP
        processors.
    horizon:
        Releases are generated in ``[0, horizon)``.
    report_window:
        Responses are reported for instances released within this window
        (default: the full horizon); later instances still execute and
        interfere.
    max_events:
        Safety valve against runaway simulations.
    jitter_rng:
        A :class:`numpy.random.Generator` used to draw actual release
        offsets ``U(0, release_jitter)`` for jittered jobs.  Responses
        remain measured from the *nominal* release times (matching the
        analyses).  Without it, jittered jobs are released nominally.
    jitter_offsets:
        Explicit per-instance release offsets, mapping job id to a
        sequence of offsets (one per instance, each clamped to
        ``[0, release_jitter]``).  Used by the audit harness to place
        releases adversarially at the envelope boundary.  Takes
        precedence over ``jitter_rng`` for the jobs it names.
    """
    system.validate()
    if report_window is None:
        report_window = horizon
    queue = EventQueue()
    result = SimulationResult(horizon=horizon, report_window=report_window)

    records: Dict[tuple, InstanceRecord] = {}
    processors: Dict[Hashable, ProcessorSim] = {}

    def on_complete(task: InstanceTask, now: float) -> None:
        job = system.job_set[task.job_id]
        rec = records[(task.job_id, task.instance)]
        rec.hop_completions.append(now)
        nxt = task.hop + 1
        if nxt < job.n_subjobs:
            sub = job.subjobs[nxt]
            processors[sub.processor].release(
                InstanceTask(
                    job_id=task.job_id,
                    hop=nxt,
                    instance=task.instance,
                    wcet=sub.wcet,
                    priority=sub.priority if sub.priority is not None else 0,
                    release_time=now,
                    nonpreemptive=sub.nonpreemptive_section,
                ),
                now,
            )

    for proc in system.processors:
        processors[proc] = ProcessorSim(
            proc, system.policy(proc), queue, on_complete
        )

    # Schedule all first-hop releases.
    for job in system.jobs:
        trace = JobTrace(job_id=job.job_id, deadline=job.deadline)
        result.jobs[job.job_id] = trace
        first = job.subjobs[0]
        times = job.arrivals.release_times(horizon)
        if jitter_offsets is not None and job.job_id in jitter_offsets:
            given = list(jitter_offsets[job.job_id])
            if len(given) < len(times):
                given.extend([0.0] * (len(times) - len(given)))
            offsets = [
                min(max(float(o), 0.0), job.release_jitter) for o in given
            ]
        elif job.release_jitter > 0 and jitter_rng is not None:
            offsets = jitter_rng.uniform(0.0, job.release_jitter, size=len(times))
        else:
            offsets = [0.0] * len(times)
        for m, (t, off) in enumerate(zip(times, offsets), start=1):
            # Responses are measured from the nominal release time.
            rec = InstanceRecord(job_id=job.job_id, instance=m, release=float(t))
            records[(job.job_id, m)] = rec
            trace.records.append(rec)
            actual = float(t) + float(off)

            def make_release(job_id=job.job_id, sub=first, m=m, t=actual):
                def _release() -> None:
                    processors[sub.processor].release(
                        InstanceTask(
                            job_id=job_id,
                            hop=0,
                            instance=m,
                            wcet=sub.wcet,
                            priority=sub.priority if sub.priority is not None else 0,
                            release_time=t,
                            nonpreemptive=sub.nonpreemptive_section,
                        ),
                        t,
                    )

                return _release

            queue.schedule(actual, make_release())

    # Event loop: run to empty (all instances complete) or the safety cap.
    events = 0
    while True:
        ev = queue.pop()
        if ev is None:
            break
        events += 1
        if events > max_events:
            result.completed_all = False
            break
        ev.action()

    for name, proc in processors.items():
        result.processor_busy[name] = proc.busy_time
        if not proc.idle:
            result.completed_all = False
    if any(not r.finished for r in records.values()):
        result.completed_all = False
    return result

"""Per-processor scheduling simulation (SPP, SPNP, FCFS).

Each :class:`ProcessorSim` owns a ready queue and at most one running
instance.  The three policies of the paper are implemented exactly:

* **SPP** -- preemptive static priority: a newly ready instance with a
  smaller ``phi`` immediately preempts the running one (whose remaining
  execution time is preserved);
* **SPNP** -- non-preemptive static priority: the running instance always
  finishes; the highest-priority ready instance is dispatched next;
* **FCFS** -- instances are served in release order at this processor.

Tie-breaking is deterministic: equal priorities / release times are
ordered by ``(job_id, hop index, instance number)``.  Within one subjob,
instances are processed in release order (the FIFO assumption behind
Theorem 2).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Callable, Hashable, List, Optional, Tuple

from ..model.system import SchedulingPolicy
from .engine import Event, EventQueue

__all__ = ["InstanceTask", "ProcessorSim"]


@dataclass
class InstanceTask:
    """One instance of one subjob, as seen by a processor."""

    job_id: str
    hop: int
    instance: int  #: 1-based instance number m
    wcet: float
    priority: int
    release_time: float  #: release at *this* processor
    nonpreemptive: float = 0.0  #: preemption-masked prefix of the execution
    remaining: float = field(init=False)
    start_last: float = field(init=False, default=math.nan)
    completion_time: float = field(init=False, default=math.nan)

    def __post_init__(self) -> None:
        self.remaining = self.wcet

    def executed_by(self, now: float) -> float:
        """Execution time accumulated by ``now`` (while running)."""
        done = self.wcet - self.remaining
        if not math.isnan(self.start_last):
            done += max(0.0, now - self.start_last)
        return min(done, self.wcet)

    @property
    def key(self) -> Tuple[str, int, int]:
        return (self.job_id, self.hop, self.instance)


class ProcessorSim:
    """Simulation state of one processor."""

    def __init__(
        self,
        name: Hashable,
        policy: SchedulingPolicy,
        queue: EventQueue,
        on_complete: Callable[[InstanceTask, float], None],
    ) -> None:
        self.name = name
        self.policy = policy
        self.queue = queue
        self.on_complete = on_complete
        self._ready: List[Tuple[tuple, InstanceTask]] = []
        self.running: Optional[InstanceTask] = None
        self._completion_event: Optional[Event] = None
        self._unmask_event: Optional[Event] = None
        self.busy_time = 0.0  #: accumulated service (utilization function)

    # ------------------------------------------------------------------

    def _order_key(self, task: InstanceTask) -> tuple:
        if self.policy == SchedulingPolicy.FCFS:
            return (task.release_time, task.job_id, task.hop, task.instance)
        return (task.priority, task.release_time, task.job_id, task.hop, task.instance)

    def release(self, task: InstanceTask, now: float) -> None:
        """A new instance becomes ready at this processor."""
        heapq.heappush(self._ready, (self._order_key(task), task))
        self.dispatch(now)

    # ------------------------------------------------------------------

    def dispatch(self, now: float) -> None:
        """Start/preempt work according to the policy."""
        if self.running is not None:
            if self.policy != SchedulingPolicy.SPP or not self._ready:
                return
            best = self._ready[0][1]
            if best.priority < self.running.priority:
                # If the running instance has already exhausted its
                # execution time exactly at `now`, its completion event is
                # pending at this same timestamp: let it complete instead
                # of "preempting" finished work (which would artificially
                # delay its completion past a simultaneous arrival).
                if self.running.start_last + self.running.remaining <= now + 1e-12:
                    return
                # Preemption masking: inside its non-preemptable prefix
                # the running instance cannot be displaced; re-evaluate
                # the instant the masked region ends.
                executed = self.running.executed_by(now)
                if executed < self.running.nonpreemptive - 1e-12:
                    unmask_at = now + (self.running.nonpreemptive - executed)
                    pending = (
                        self._unmask_event is not None
                        and not self._unmask_event.cancelled
                        and now - 1e-12 < self._unmask_event.time <= unmask_at + 1e-12
                    )
                    if not pending:
                        self._unmask_event = self.queue.schedule(
                            unmask_at, lambda t=unmask_at: self.dispatch(t)
                        )
                    return
                self._preempt(now)
            else:
                return
        if self.running is None and self._ready:
            _, task = heapq.heappop(self._ready)
            self._start(task, now)

    def _start(self, task: InstanceTask, now: float) -> None:
        self.running = task
        task.start_last = now
        finish = now + task.remaining
        self._completion_event = self.queue.schedule(
            finish, lambda: self._complete(finish)
        )

    def _preempt(self, now: float) -> None:
        task = self.running
        assert task is not None
        executed = now - task.start_last
        task.remaining -= executed
        self.busy_time += executed
        if task.remaining < -1e-9:
            raise RuntimeError(f"negative remaining time for {task.key}")
        task.remaining = max(task.remaining, 0.0)
        task.start_last = math.nan
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        heapq.heappush(self._ready, (self._order_key(task), task))
        self.running = None

    def _complete(self, now: float) -> None:
        task = self.running
        assert task is not None, f"completion with idle processor {self.name}"
        self.busy_time += task.remaining
        task.remaining = 0.0
        task.completion_time = now
        self.running = None
        self._completion_event = None
        self.on_complete(task, now)
        self.dispatch(now)

    # ------------------------------------------------------------------

    @property
    def idle(self) -> bool:
        return self.running is None and not self._ready

    def backlog(self) -> float:
        """Remaining work currently queued or running."""
        total = sum(t.remaining for _, t in self._ready)
        if self.running is not None:
            total += self.running.remaining
        return total

"""Simulation traces and response-time statistics."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

__all__ = ["InstanceRecord", "JobTrace", "SimulationResult"]


@dataclass
class InstanceRecord:
    """Lifecycle of one end-to-end job instance."""

    job_id: str
    instance: int  #: 1-based instance number
    release: float  #: release of the first subjob
    hop_completions: List[float] = field(default_factory=list)

    @property
    def completion(self) -> float:
        """Completion of the last subjob (nan while in flight)."""
        return self.hop_completions[-1] if self.hop_completions else math.nan

    @property
    def finished(self) -> bool:
        return bool(self.hop_completions) and not math.isnan(self.hop_completions[-1])

    @property
    def response(self) -> float:
        return self.completion - self.release


@dataclass
class JobTrace:
    """All recorded instances of one job."""

    job_id: str
    deadline: float
    records: List[InstanceRecord] = field(default_factory=list)

    def responses(self, released_by: float = math.inf) -> np.ndarray:
        """End-to-end response times of finished instances released by t."""
        vals = [
            r.response
            for r in self.records
            if r.finished and r.release <= released_by
        ]
        return np.asarray(vals)

    def max_response(self, released_by: float = math.inf) -> float:
        resp = self.responses(released_by)
        return float(resp.max()) if resp.size else 0.0

    def deadline_misses(self, released_by: float = math.inf) -> int:
        resp = self.responses(released_by)
        return int(np.count_nonzero(resp > self.deadline + 1e-9))


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    horizon: float
    report_window: float
    jobs: Dict[str, JobTrace] = field(default_factory=dict)
    processor_busy: Dict[object, float] = field(default_factory=dict)
    completed_all: bool = True  #: all released instances finished in time

    def max_response(self, job_id: str) -> float:
        """Worst observed response among instances in the report window."""
        return self.jobs[job_id].max_response(self.report_window)

    def responses(self, job_id: str) -> np.ndarray:
        return self.jobs[job_id].responses(self.report_window)

    @property
    def all_deadlines_met(self) -> bool:
        return all(
            t.deadline_misses(self.report_window) == 0 for t in self.jobs.values()
        )

    def summary(self) -> str:
        lines = [
            f"simulation: horizon={self.horizon:g} "
            f"report_window={self.report_window:g} "
            f"complete={self.completed_all}"
        ]
        for job_id, trace in sorted(self.jobs.items()):
            resp = trace.responses(self.report_window)
            if resp.size:
                lines.append(
                    f"  {job_id}: n={resp.size} max={resp.max():.6g} "
                    f"mean={resp.mean():.6g} deadline={trace.deadline:g} "
                    f"misses={trace.deadline_misses(self.report_window)}"
                )
            else:
                lines.append(f"  {job_id}: no finished instances in window")
        return "\n".join(lines)

"""Chaos harness: run a batch campaign under fault injection and prove
that crash-resume reproduces the uninterrupted run.

The harness is the executable argument for the robustness layer
(``docs/robustness.md``): it generates a deterministic campaign, runs it
once in-process with *no* faults (the baseline), then runs the same
campaign in child processes under a :class:`~repro.chaos.faults.ChaosInjector`
with a write-ahead journal -- SIGKILLing each child after a configured
number of journal appends, optionally tearing or corrupting the journal
tail between runs -- and finally resumes to completion.  It then asserts:

* **Equivalence**: the journaled outcomes match the baseline record for
  record (statuses, schedulability verdicts, response-time bounds),
  modulo timings and attempt counts.
* **No re-analysis**: the final journal holds exactly one record per
  item (unique content digests), i.e. resuming never re-ran a journaled
  item.
* **Bounded retries**: no surviving record used more attempts than the
  retry policy allows.

Campaign systems are built with :mod:`random` (stdlib) only, so the
harness runs identically with or without numpy installed.
"""

from __future__ import annotations

import copy
import json
import os
import random
import signal
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..batch import BatchEngine, BatchItem, BatchJournal, RetryPolicy
from ..model.io import system_from_dict
from ..obs.status import read_status
from .faults import (
    ChaosInjector,
    corrupt_journal_tail,
    tamper_cache_entries,
    truncate_journal_tail,
)

__all__ = [
    "ChaosConfig",
    "ChaosReport",
    "generate_campaign",
    "normalize_record",
    "run_chaos",
    "run_campaign",
]


@dataclass(frozen=True)
class ChaosConfig:
    """One chaos experiment, fully determined by its fields."""

    n_items: int = 50
    seed: int = 7
    method: str = "SPP/Exact"
    workers: int = 2
    kill_rate: float = 0.02
    timeout_rate: float = 0.04
    error_rate: float = 0.04
    #: SIGKILL the campaign after this many journal appends, once per
    #: listed point (each subsequent run resumes before being killed).
    kill_points: Tuple[int, ...] = (7, 19)
    #: Tamper applied to the journal tail after the first kill:
    #: ``none``, ``truncate`` (torn final write) or ``corrupt`` (CRC rot).
    tamper: str = "truncate"
    max_attempts: int = 4
    #: Persistent cache root used by the injected runs (``None`` = no
    #: cache).  When set, the harness also scrambles a deterministic
    #: subset of cache entries after the first kill -- the equivalence
    #: check then proves cache corruption never propagates into results.
    cache_dir: Optional[str] = None

    def policy(self) -> RetryPolicy:
        """Retry policy for both the baseline and the injected runs.

        Backoff is disabled (chaos campaigns measure correctness, not
        patience) and so is the degradation ladder: every retry reruns
        the item with its own options, which is what makes the injected
        run's final bounds provably identical to the baseline's.
        """
        return RetryPolicy(
            max_attempts=self.max_attempts,
            base_delay=0.0,
            jitter=0.0,
            degrade=False,
        )

    def injector(self) -> ChaosInjector:
        return ChaosInjector(
            seed=self.seed,
            kill_rate=self.kill_rate,
            timeout_rate=self.timeout_rate,
            error_rate=self.error_rate,
        )


def generate_campaign(n_items: int, seed: int) -> List[Dict[str, Any]]:
    """Deterministic list of work items (``{"id", "system"}`` dicts).

    Systems are small single-resource SPP job sets mixing periodic and
    bursty arrivals, sized so a few hundred analyze in seconds; deadlines
    straddle the feasible/infeasible boundary so both verdicts appear.
    """
    rng = random.Random(seed)
    campaign = []
    for i in range(n_items):
        n_jobs = rng.randint(1, 3)
        jobs = []
        for j in range(n_jobs):
            period = rng.choice([4.0, 5.0, 6.0, 8.0, 10.0]) * (1.0 + 0.5 * j)
            wcet = round(rng.uniform(0.3, 0.2 * period), 3)
            if rng.random() < 0.3:
                arrivals: Dict[str, Any] = {
                    "type": "bursty",
                    "x": round(rng.uniform(0.05, 0.3), 3),
                }
            else:
                arrivals = {"type": "periodic", "period": period}
            jobs.append(
                {
                    "id": f"job{i}_{j}",
                    "deadline": round(rng.uniform(0.8, 3.0) * period, 3),
                    "arrivals": arrivals,
                    "route": [["cpu", wcet]],
                }
            )
        campaign.append(
            {
                "id": f"item{i}",
                # ``i`` is folded into a job id above, so every item's
                # system differs and content digests stay unique.
                "system": {"policies": {"cpu": "spp"}, "jobs": jobs},
            }
        )
    return campaign


def _build_items(campaign: List[Dict[str, Any]], method: str) -> List[BatchItem]:
    return [
        BatchItem(
            system=system_from_dict(entry["system"]),
            method=method,
            item_id=entry["id"],
        )
        for entry in campaign
    ]


class _KillAfterJournal(BatchJournal):
    """Journal that SIGKILLs its own process after N appends.

    The kill lands *after* the record is durably written, modelling a
    crash between two items -- the torn-tail case is produced separately
    by tampering with the file.
    """

    def __init__(self, path: str, kill_after: Optional[int]) -> None:
        super().__init__(path, fsync_interval=0.0)
        self._kill_after = kill_after

    def append(self, digest: str, index: int, record: Dict[str, Any]) -> None:
        super().append(digest, index, record)
        if self._kill_after is not None and self.n_appended >= self._kill_after:
            os.kill(os.getpid(), getattr(signal, "SIGKILL", signal.SIGTERM))


def run_campaign(
    config: ChaosConfig,
    journal_path: str,
    kill_after: Optional[int] = None,
    inject: bool = True,
    status: Optional[str] = None,
    status_interval: float = 1.0,
) -> None:
    """Run (or resume) the campaign in *this* process.

    This is the child side of the harness (``repro chaos --child``): it
    opens/creates the journal, arms the fault injector and runs to
    completion -- unless ``kill_after`` journal appends happen first, in
    which case the process SIGKILLs itself mid-campaign.  With ``status``
    the campaign additionally publishes a live status file, which the
    parent verifies against the uninterrupted baseline.
    """
    items = _build_items(
        generate_campaign(config.n_items, config.seed), config.method
    )
    engine = BatchEngine(
        n_workers=config.workers,
        retry=config.policy(),
        journal=_KillAfterJournal(journal_path, kill_after),
        resume=os.path.exists(journal_path),
        fault_injector=config.injector() if inject else None,
        status=status,
        status_interval=status_interval,
        cache_dir=config.cache_dir,
    )
    engine.run(items)


def normalize_record(record: Dict[str, Any]) -> Dict[str, Any]:
    """Strip the run-dependent fields before comparing records.

    Timings, cache statistics and attempt histories legitimately differ
    between an uninterrupted run and a crash-resumed one; everything else
    -- status, verdict, bounds -- must match exactly.
    """
    rec = copy.deepcopy(record)
    for key in (
        "wall_time",
        "cache_hits",
        "cache_misses",
        "attempts",
        "trace",
        "metrics",
        "timeout_enforced",
    ):
        rec.pop(key, None)
    if isinstance(rec.get("result"), dict):
        rec["result"].pop("cache", None)
    return rec


@dataclass
class ChaosReport:
    """Outcome of one chaos experiment (see :func:`run_chaos`)."""

    config: ChaosConfig
    ok: bool = False
    stages: List[Dict[str, Any]] = field(default_factory=list)
    n_items: int = 0
    n_journal_entries: int = 0
    n_unique_digests: int = 0
    n_mismatches: int = 0
    mismatches: List[Dict[str, Any]] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        cfg = {
            "n_items": self.config.n_items,
            "seed": self.config.seed,
            "method": self.config.method,
            "workers": self.config.workers,
            "kill_rate": self.config.kill_rate,
            "timeout_rate": self.config.timeout_rate,
            "error_rate": self.config.error_rate,
            "kill_points": list(self.config.kill_points),
            "tamper": self.config.tamper,
            "max_attempts": self.config.max_attempts,
            "cache_dir": self.config.cache_dir,
        }
        return {
            "ok": self.ok,
            "config": cfg,
            "stages": list(self.stages),
            "n_items": self.n_items,
            "n_journal_entries": self.n_journal_entries,
            "n_unique_digests": self.n_unique_digests,
            "n_mismatches": self.n_mismatches,
            "mismatches": list(self.mismatches),
            "errors": list(self.errors),
        }

    def summary(self) -> str:
        verdict = "PASS" if self.ok else "FAIL"
        return (
            f"chaos: {verdict} -- {self.n_items} items, "
            f"{len(self.stages)} stage(s), "
            f"{self.n_journal_entries} journal entries "
            f"({self.n_unique_digests} unique), "
            f"{self.n_mismatches} mismatch(es)"
            + (f"; {'; '.join(self.errors)}" if self.errors else "")
        )


def _child_command(
    config: ChaosConfig,
    journal_path: str,
    kill_after: Optional[int],
    status: Optional[str] = None,
) -> List[str]:
    cmd = [
        sys.executable,
        "-m",
        "repro",
        "chaos",
        "--child",
        "--journal",
        journal_path,
        "--items",
        str(config.n_items),
        "--seed",
        str(config.seed),
        "--method",
        config.method,
        "--workers",
        str(config.workers),
        "--kill-rate",
        str(config.kill_rate),
        "--timeout-rate",
        str(config.timeout_rate),
        "--error-rate",
        str(config.error_rate),
        "--max-attempts",
        str(config.max_attempts),
    ]
    if config.cache_dir is not None:
        cmd += ["--cache-dir", config.cache_dir]
    if kill_after is not None:
        cmd += ["--kill-after", str(kill_after)]
    if status is not None:
        # Tight interval: chaos campaigns are short and the final status
        # document is what the parent verifies.
        cmd += ["--status", status, "--status-interval", "0"]
    return cmd


def _run_child(
    cmd: List[str], env: Dict[str, str], timeout: float = 600.0
) -> Tuple[int, str]:
    """Run a campaign child; return ``(returncode, stderr_text)``.

    A SIGKILLed child leaves orphaned pool workers behind that inherit
    its stdio, so pipes + ``communicate()`` would block until the
    orphans exit.  Instead the child gets devnull stdio with stderr to a
    temp file, runs in its own session, and the whole process group is
    killed after it exits -- reaping any orphans promptly.
    """
    with tempfile.TemporaryFile(mode="w+", encoding="utf-8") as errfh:
        proc = subprocess.Popen(
            cmd,
            env=env,
            stdin=subprocess.DEVNULL,
            stdout=subprocess.DEVNULL,
            stderr=errfh,
            start_new_session=True,
        )
        try:
            returncode = proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            returncode = -signal.SIGKILL
        finally:
            try:
                os.killpg(proc.pid, signal.SIGKILL)
            except (OSError, ProcessLookupError):  # already gone
                pass
            proc.wait()
        errfh.seek(0)
        return returncode, errfh.read()


def _child_env() -> Dict[str, str]:
    """Child env with this repro package importable, however we were run."""
    env = dict(os.environ)
    src_dir = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
    current = env.get("PYTHONPATH", "")
    if src_dir not in current.split(os.pathsep):
        env["PYTHONPATH"] = (
            src_dir + (os.pathsep + current if current else "")
        )
    return env


def run_chaos(
    config: ChaosConfig,
    journal_path: str,
    status_path: Optional[str] = None,
) -> ChaosReport:
    """Run the full chaos experiment; the report says whether it held up.

    Stages: baseline (in-process, no faults, no journal), one killed
    child per kill point (the first followed by the configured journal
    tampering), a final child that resumes to completion, then
    verification against the baseline.  With ``status_path`` every child
    also publishes a live status file, and verification additionally
    requires the final (killed-then-resumed) status document to report
    the same item counts as the uninterrupted baseline.
    """
    report = ChaosReport(config=config, n_items=config.n_items)

    # -- baseline: the ground truth this campaign must reproduce --------
    items = _build_items(
        generate_campaign(config.n_items, config.seed), config.method
    )
    baseline_engine = BatchEngine(
        n_workers=config.workers, retry=config.policy()
    )
    baseline = {
        rec.item_id: normalize_record(rec.to_dict())
        for rec in baseline_engine.run(items)
    }
    report.stages.append({"stage": "baseline", "n_records": len(baseline)})

    if os.path.exists(journal_path):
        os.unlink(journal_path)

    # -- killed runs ----------------------------------------------------
    env = _child_env()
    for stage_no, kill_after in enumerate(config.kill_points):
        returncode, _err = _run_child(
            _child_command(config, journal_path, kill_after, status_path), env
        )
        stage = {
            "stage": f"kill@{kill_after}",
            "returncode": returncode,
            "journal_bytes": (
                os.path.getsize(journal_path)
                if os.path.exists(journal_path)
                else 0
            ),
        }
        if returncode == 0:
            # The campaign finished before reaching the kill point --
            # legal (late kill point), but the stage injected no crash.
            stage["completed_early"] = True
        report.stages.append(stage)
        if stage_no == 0 and config.tamper != "none":
            if not os.path.exists(journal_path):
                report.errors.append(
                    f"no journal to tamper with after stage {stage['stage']}"
                )
            elif config.tamper == "truncate":
                stage["tampered_bytes"] = truncate_journal_tail(journal_path)
            elif config.tamper == "corrupt":
                stage["tampered_at"] = corrupt_journal_tail(journal_path)
            else:
                report.errors.append(f"unknown tamper mode {config.tamper!r}")
        if (
            stage_no == 0
            and config.cache_dir is not None
            and os.path.isdir(config.cache_dir)
        ):
            # Scramble part of the persistent cache mid-campaign: the
            # store must detect every damaged entry and recompute.
            stage["cache_tampered"] = tamper_cache_entries(
                config.cache_dir, seed=config.seed
            )

    # -- final resume to completion ------------------------------------
    returncode, err = _run_child(
        _child_command(config, journal_path, None, status_path), env
    )
    report.stages.append({"stage": "final", "returncode": returncode})
    if returncode != 0:
        report.errors.append(
            f"final resume exited {returncode}: {err.strip()[-500:]}"
        )
        return report

    # -- verification ---------------------------------------------------
    _header, entries, _good, _total = BatchJournal.scan(journal_path)
    report.n_journal_entries = len(entries)
    report.n_unique_digests = len({e["digest"] for e in entries})
    if report.n_journal_entries != config.n_items:
        report.errors.append(
            f"journal holds {report.n_journal_entries} entries for "
            f"{config.n_items} items (resume re-analyzed journaled items)"
        )
    if report.n_unique_digests != report.n_journal_entries:
        report.errors.append("duplicate item digests in the final journal")

    policy = config.policy()
    for entry in entries:
        rec = entry["record"]
        attempts = rec.get("attempts") or []
        if len(attempts) > policy.max_attempts:
            report.errors.append(
                f"item {rec.get('id')!r} used {len(attempts)} attempts "
                f"(policy allows {policy.max_attempts})"
            )
        got = normalize_record(rec)
        want = baseline.get(str(rec.get("id")))
        if want is None:
            report.errors.append(f"item {rec.get('id')!r} not in baseline")
        elif got != want:
            report.n_mismatches += 1
            if len(report.mismatches) < 5:
                report.mismatches.append(
                    {"id": rec.get("id"), "baseline": want, "chaos": got}
                )
    if report.n_mismatches:
        report.errors.append(
            f"{report.n_mismatches} record(s) differ from the baseline"
        )

    # -- status-file verification --------------------------------------
    if status_path is not None:
        doc = read_status(status_path)
        if doc is None:
            report.errors.append(
                f"final status file {status_path!r} is missing or unreadable"
            )
        else:
            by_status: Dict[str, int] = {}
            for rec in baseline.values():
                key = str(rec.get("status"))
                by_status[key] = by_status.get(key, 0) + 1
            stage = {
                "stage": "status",
                "state": doc.get("state"),
                "done": doc.get("done"),
                "resumed": doc.get("resumed"),
                "by_status": doc.get("by_status"),
            }
            report.stages.append(stage)
            if doc.get("state") != "done":
                report.errors.append(
                    f"final status state is {doc.get('state')!r}, not 'done'"
                )
            if doc.get("done") != config.n_items:
                report.errors.append(
                    f"final status counts {doc.get('done')} done items "
                    f"for a {config.n_items}-item campaign"
                )
            if doc.get("by_status") != dict(sorted(by_status.items())):
                report.errors.append(
                    "final status by_status "
                    f"{doc.get('by_status')} != baseline {by_status}"
                )
    report.ok = not report.errors
    return report


def main_child(args) -> int:
    """Entry point for ``repro chaos --child`` (internal)."""
    config = ChaosConfig(
        n_items=args.items,
        seed=args.seed,
        method=args.method,
        workers=args.workers,
        kill_rate=args.kill_rate,
        timeout_rate=args.timeout_rate,
        error_rate=args.error_rate,
        max_attempts=args.max_attempts,
        cache_dir=args.cache_dir,
    )
    run_campaign(
        config,
        args.journal,
        kill_after=args.kill_after,
        inject=not args.no_inject,
        status=args.status,
        status_interval=args.status_interval,
    )
    return 0


def main_parent(args) -> Tuple[int, ChaosReport]:
    """Entry point for ``repro chaos`` (the experiment driver)."""
    config = ChaosConfig(
        n_items=args.items,
        seed=args.seed,
        method=args.method,
        workers=args.workers,
        kill_rate=args.kill_rate,
        timeout_rate=args.timeout_rate,
        error_rate=args.error_rate,
        kill_points=tuple(args.kill_points),
        tamper=args.tamper,
        max_attempts=args.max_attempts,
        cache_dir=args.cache_dir,
    )
    report = run_chaos(config, args.journal, status_path=args.status)
    if args.json:
        from ..ioutil import write_json_atomic

        write_json_atomic(args.json, report.to_dict(), indent=2)
    print(report.summary(), file=sys.stderr)
    if not args.json:
        print(json.dumps(report.to_dict(), indent=2, allow_nan=False))
    return (0 if report.ok else 1), report

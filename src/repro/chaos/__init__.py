"""Chaos engineering for the batch subsystem.

Deterministic fault injection (:mod:`repro.chaos.faults`) plus the
campaign harness (:mod:`repro.chaos.harness`) that kills, tampers with
and resumes a journaled batch run and proves the result equivalent to an
uninterrupted one.  ``python -m repro chaos`` drives it from the CLI;
``docs/robustness.md`` explains the failure model.
"""

from .faults import (
    ChaosInjector,
    ChaosTransientError,
    corrupt_journal_tail,
    tamper_cache_entries,
    truncate_journal_tail,
)
from .harness import (
    ChaosConfig,
    ChaosReport,
    generate_campaign,
    normalize_record,
    run_campaign,
    run_chaos,
)

__all__ = [
    "ChaosConfig",
    "ChaosInjector",
    "ChaosReport",
    "ChaosTransientError",
    "corrupt_journal_tail",
    "generate_campaign",
    "normalize_record",
    "run_campaign",
    "run_chaos",
    "tamper_cache_entries",
    "truncate_journal_tail",
]

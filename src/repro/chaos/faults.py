"""Deterministic fault injectors for the batch engine.

Chaos runs must be *reproducible*: the same seed injects the same faults
into the same items, so a failing chaos campaign is a regression you can
replay, not a flake you shrug at.  Every injector here draws its faults
from a keyed hash -- no global random state, no time dependence.

:class:`ChaosInjector` is the in-band injector: the batch engine calls
``before_item(item_id, attempt, timeout_exc)`` inside the worker, right
where a real analysis would start, and the injector either returns
(no fault), raises a synthetic timeout or transient error, or SIGKILLs
the worker process mid-chunk.  The module-level helpers tamper with a
journal file *out of band*, simulating what a machine crash can do to
the last write.
"""

from __future__ import annotations

import hashlib
import os
import signal
from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "ChaosInjector",
    "ChaosTransientError",
    "corrupt_journal_tail",
    "tamper_cache_entries",
    "truncate_journal_tail",
]


class ChaosTransientError(RuntimeError):
    """Synthetic transient failure (the kind a retry should absorb).

    The class name doubles as the retry-classification key: it is listed
    in :attr:`repro.batch.retry.RetryPolicy.transient_errors` by default,
    so an injected error is retried exactly like a real flaky I/O error.
    """


@dataclass(frozen=True)
class ChaosInjector:
    """Seed-keyed fault injector for batch work items.

    Each ``(item, attempt)`` pair gets one uniform draw in ``[0, 1)``
    from ``blake2b(seed:item:attempt)``; the draw selects at most one of
    the mutually exclusive faults by rate:

    * ``u < kill_rate`` -- SIGKILL the current worker process mid-chunk
      (downgraded to a :class:`ChaosTransientError` when running serially
      in the supervising process itself, which must survive);
    * next ``timeout_rate`` slice -- raise the engine's item-timeout
      exception, exactly as an expired SIGALRM would;
    * next ``error_rate`` slice -- raise :class:`ChaosTransientError`.

    ``max_attempt`` bounds injection to the first N attempts of an item
    (default 1): retries of a faulted item then run clean, which keeps a
    chaos campaign's *final* outcomes identical to an uninjected run --
    the equivalence the harness asserts.  Raise it to exercise the
    quarantine path instead.

    The injector is a frozen dataclass of scalars, so it pickles across
    the pool boundary unchanged.
    """

    seed: int = 0
    kill_rate: float = 0.0
    timeout_rate: float = 0.0
    error_rate: float = 0.0
    max_attempt: int = 1
    #: PID of the process that built the injector -- never SIGKILLed.
    parent_pid: int = field(default_factory=os.getpid)

    def __post_init__(self) -> None:
        total = self.kill_rate + self.timeout_rate + self.error_rate
        if min(self.kill_rate, self.timeout_rate, self.error_rate) < 0 or total > 1:
            raise ValueError("fault rates must be >= 0 and sum to <= 1")
        if self.max_attempt < 1:
            raise ValueError("max_attempt must be >= 1")

    def draw(self, item_id: str, attempt: int) -> float:
        """The uniform variate deciding item ``item_id``'s fate."""
        digest = hashlib.blake2b(
            f"{self.seed}:{item_id}:{attempt}".encode("utf-8"), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big") / float(1 << 64)

    def fault_for(self, item_id: str, attempt: int) -> Optional[str]:
        """Which fault (``kill``/``timeout``/``error``/None) will fire.

        Pure function of the injector and its arguments -- the harness
        uses it to predict a campaign's fault schedule without running it.
        """
        if attempt > self.max_attempt:
            return None
        u = self.draw(item_id, attempt)
        if u < self.kill_rate:
            return "kill"
        if u < self.kill_rate + self.timeout_rate:
            return "timeout"
        if u < self.kill_rate + self.timeout_rate + self.error_rate:
            return "error"
        return None

    def before_item(self, item_id: str, attempt: int, timeout_exc: type) -> None:
        """Engine hook: maybe fault instead of letting the item run."""
        fault = self.fault_for(item_id, attempt)
        if fault is None:
            return
        if fault == "kill":
            if os.getpid() != self.parent_pid and hasattr(signal, "SIGKILL"):
                os.kill(os.getpid(), signal.SIGKILL)
            # Serial fallback: killing the only process would end the
            # campaign itself, so the fault degrades to a transient error.
            raise ChaosTransientError(
                f"injected worker kill for item {item_id!r} "
                f"(downgraded: running in the supervising process)"
            )
        if fault == "timeout":
            raise timeout_exc()
        raise ChaosTransientError(
            f"injected transient failure for item {item_id!r} "
            f"(attempt {attempt})"
        )


# ----------------------------------------------------------------------
# out-of-band journal tampering
# ----------------------------------------------------------------------


def truncate_journal_tail(path: str, n_bytes: int = 24) -> int:
    """Chop ``n_bytes`` off the end of a journal: a torn final write.

    Returns the number of bytes actually removed.  The resulting file
    ends mid-record, exactly like a kill between ``write`` and ``fsync``;
    a resuming engine must drop the torn record and re-analyze that item.
    """
    size = os.path.getsize(path)
    removed = min(n_bytes, size)
    with open(path, "r+b") as fh:
        fh.truncate(size - removed)
    return removed


def corrupt_journal_tail(path: str, flip: int = 5) -> int:
    """Flip bytes inside the final record without changing its length.

    Simulates a partially flushed page: the last line still *looks* like
    a line (newline intact) but fails its CRC.  Returns the file offset
    of the first corrupted byte, or -1 when the file has no final record
    to corrupt.
    """
    with open(path, "r+b") as fh:
        raw = fh.read()
        # Find the start of the last non-empty line.
        end = len(raw)
        if end and raw[end - 1 : end] == b"\n":
            end -= 1
        start = raw.rfind(b"\n", 0, end) + 1
        if start >= end:
            return -1
        target = start + (end - start) // 2
        fh.seek(target)
        original = raw[target : target + flip]
        fh.write(bytes((b ^ 0xA5) for b in original))
    return target


def tamper_cache_entries(
    cache_dir: str, seed: int = 0, fraction: float = 0.3, flip: int = 3
) -> int:
    """Flip bytes inside a deterministic subset of cache entry files.

    Simulates silent disk corruption of the persistent cache
    (:mod:`repro.cache`): each entry under ``cache_dir`` is selected with
    probability ``fraction`` by a seed-keyed hash of its filename (stable
    across runs and directory orderings), and ``flip`` bytes in its
    middle are XOR-scrambled in place.  The store's CRC self-verification
    must turn every tampered entry into a counted miss -- recomputed,
    never served.  Returns the number of entries tampered.
    """
    if not 0 <= fraction <= 1:
        raise ValueError("fraction must be in [0, 1]")
    tampered = 0
    for dirpath, _dirnames, filenames in sorted(os.walk(cache_dir)):
        for name in sorted(filenames):
            if not name.endswith(".json"):
                continue
            digest = hashlib.blake2b(
                f"{seed}:{name}".encode("utf-8"), digest_size=8
            ).digest()
            u = int.from_bytes(digest, "big") / float(1 << 64)
            if u >= fraction:
                continue
            path = os.path.join(dirpath, name)
            with open(path, "r+b") as fh:
                raw = fh.read()
                if not raw:
                    continue
                target = len(raw) // 2
                fh.seek(target)
                original = raw[target : target + flip]
                fh.write(bytes((b ^ 0xA5) for b in original))
            tampered += 1
    return tampered

"""Live campaign status files: atomic, schema-versioned, torn-read safe.

A long campaign (``repro batch`` / ``audit`` / ``chaos``) is opaque until
it exits unless it publishes progress somewhere.  :class:`StatusWriter`
periodically serializes a small JSON document -- counts of items done /
failed / retried / quarantined / resumed, an EWMA throughput estimate
with an ETA, per-worker liveness, the write-ahead-journal position and an
optional metrics snapshot -- to a status file via
:func:`repro.ioutil.write_json_atomic` (tmp file + ``os.replace``), so a
reader never sees a half-written document on POSIX.  Writes are throttled
to one per ``interval`` seconds; the terminal write (``finish``) is
always emitted and fsynced.

:func:`read_status` is the tolerant counterpart: a missing, torn or
otherwise unparseable file yields ``None`` instead of raising, because a
watcher polling mid-rename (or over a non-atomic network filesystem) must
simply try again.  ``python -m repro obs watch`` builds on it.
"""

from __future__ import annotations

import json
import math
import os
import time
from typing import Any, Dict, Optional

from ..ioutil import write_json_atomic
from . import metrics as _metrics

__all__ = [
    "STATUS_SCHEMA_VERSION",
    "STATUS_KIND",
    "StatusWriter",
    "read_status",
]

#: Version of the status-file JSON schema.
STATUS_SCHEMA_VERSION = 1
#: Discriminator so readers can reject unrelated JSON files.
STATUS_KIND = "repro.status"

#: Smoothing factor for the inter-completion-time EWMA (higher = snappier).
_EWMA_ALPHA = 0.2
#: A worker is reported alive when seen within this many seconds.
_LIVENESS_WINDOW = 30.0


def _json_sanitize(value: Any) -> Any:
    """Replace non-finite floats (strict JSON rejects them) recursively."""
    if isinstance(value, float) and not math.isfinite(value):
        return str(value)
    if isinstance(value, dict):
        return {k: _json_sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_sanitize(v) for v in value]
    return value


class StatusWriter:
    """Throttled publisher of one campaign's live status file.

    Parameters
    ----------
    path:
        Destination file; every write replaces it atomically.
    campaign:
        Free-form campaign kind shown by the watcher (``batch``,
        ``audit``, ...).
    interval:
        Minimum seconds between two non-forced writes.  ``0`` writes on
        every update (useful in tests).
    include_metrics:
        Embed a snapshot of the active :class:`MetricsRegistry` (when
        one is enabled) in each status document.
    """

    def __init__(
        self,
        path: str,
        campaign: str = "batch",
        interval: float = 1.0,
        include_metrics: bool = True,
    ) -> None:
        if interval < 0:
            raise ValueError("interval must be >= 0")
        self.path = path
        self.campaign = campaign
        self.interval = float(interval)
        self.include_metrics = include_metrics
        self.total = 0
        self.n_workers = 0
        self.by_status: Dict[str, int] = {}
        self.done = 0
        self.failed = 0
        self.retried = 0
        self.quarantined = 0
        self.resumed = 0
        self.cached = 0
        self.state = "starting"
        self._journal: Optional[Any] = None
        self._workers: Dict[int, float] = {}
        self._started_wall = time.time()
        self._started_mono = time.monotonic()
        self._last_write_mono: Optional[float] = None
        self._last_done_mono: Optional[float] = None
        self._ewma_dt: Optional[float] = None

    # ------------------------------------------------------------------
    # producer API
    # ------------------------------------------------------------------

    def begin(
        self,
        total: int,
        n_workers: int = 0,
        journal: Optional[Any] = None,
    ) -> None:
        """Publish the initial document (always written, never throttled)."""
        self.total = int(total)
        self.n_workers = int(n_workers)
        self._journal = journal
        self.state = "running"
        if not n_workers:  # serial: the campaign process is the worker
            self.worker_seen(os.getpid())
        self.write(force=True)

    def item_done(
        self,
        status: str,
        resumed: bool = False,
        retried: bool = False,
        cached: bool = False,
    ) -> None:
        """Count one finished item and maybe publish."""
        now = time.monotonic()
        self.done += 1
        self.by_status[status] = self.by_status.get(status, 0) + 1
        if status != "ok":
            self.failed += 1
        if status == "quarantined":
            self.quarantined += 1
        if resumed:
            self.resumed += 1
        elif cached:
            self.cached += 1
        elif retried:
            self.retried += 1
        if not resumed and not cached:
            # EWMA over inter-completion gaps; resumed/cached items are
            # replayed in one burst and would skew the rate.
            if self._last_done_mono is not None:
                dt = max(1e-9, now - self._last_done_mono)
                if self._ewma_dt is None:
                    self._ewma_dt = dt
                else:
                    self._ewma_dt += _EWMA_ALPHA * (dt - self._ewma_dt)
            self._last_done_mono = now
        self.write()

    def worker_seen(self, pid: Optional[int]) -> None:
        """Note a liveness signal (any traffic) from worker ``pid``."""
        if pid is not None:
            self._workers[int(pid)] = time.monotonic()

    def finish(self, state: str = "done") -> None:
        """Publish the terminal document (durable, never throttled)."""
        self.state = state
        self.write(force=True, durable=True)

    # ------------------------------------------------------------------

    def throughput(self) -> Optional[float]:
        """EWMA completion rate in items/second (``None`` until warmed)."""
        if self._ewma_dt is None or self._ewma_dt <= 0:
            return None
        return 1.0 / self._ewma_dt

    def eta_seconds(self) -> Optional[float]:
        rate = self.throughput()
        remaining = self.total - self.done
        if rate is None or remaining <= 0:
            return None
        return remaining / rate

    def payload(self) -> Dict[str, Any]:
        """The status document (JSON-safe, schema-versioned)."""
        now_mono = time.monotonic()
        journal_block = None
        if self._journal is not None:
            journal_block = {
                "path": str(getattr(self._journal, "path", "")),
                "appended": int(getattr(self._journal, "n_appended", 0)),
            }
        doc: Dict[str, Any] = {
            "schema": STATUS_SCHEMA_VERSION,
            "kind": STATUS_KIND,
            "campaign": self.campaign,
            "state": self.state,
            "pid": os.getpid(),
            "started_at": self._started_wall,
            "updated_at": time.time(),
            "elapsed_seconds": now_mono - self._started_mono,
            "total": self.total,
            "done": self.done,
            "ok": self.by_status.get("ok", 0),
            "failed": self.failed,
            "retried": self.retried,
            "quarantined": self.quarantined,
            "resumed": self.resumed,
            "cached": self.cached,
            "by_status": dict(sorted(self.by_status.items())),
            "throughput": self.throughput(),
            "eta_seconds": self.eta_seconds(),
            "n_workers": self.n_workers,
            "workers": {
                str(pid): round(now_mono - seen, 3)
                for pid, seen in sorted(self._workers.items())
            },
            "journal": journal_block,
        }
        if self.include_metrics:
            registry = _metrics.active_metrics()
            if registry is not None:
                doc["metrics"] = _json_sanitize(registry.snapshot())
        return doc

    def write(self, force: bool = False, durable: bool = False) -> bool:
        """Atomically publish the document; returns True when written."""
        now = time.monotonic()
        if (
            not force
            and self._last_write_mono is not None
            and now - self._last_write_mono < self.interval
        ):
            return False
        write_json_atomic(self.path, self.payload(), durable=durable)
        self._last_write_mono = now
        return True


def read_status(path: str) -> Optional[Dict[str, Any]]:
    """Parse a status file; ``None`` on missing/torn/foreign content.

    The writer replaces the file atomically, but a reader must still
    survive the file not existing yet, being truncated by a non-atomic
    transport, or being some other JSON entirely.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError):
        return None
    if not isinstance(doc, dict) or doc.get("kind") != STATUS_KIND:
        return None
    if not isinstance(doc.get("schema"), int):
        return None
    return doc

"""Exporters: Chrome/Perfetto ``trace_event`` JSON and Prometheus text.

Both formats are deliberately lowest-common-denominator:

* :func:`chrome_trace_events` emits the JSON *array* flavor of the Trace
  Event Format -- one complete (``"ph": "X"``) event per finished span,
  with microsecond timestamps relative to the earliest span.  The file
  loads directly in ``chrome://tracing`` and in Perfetto's legacy
  importer.
* :func:`prometheus_lines` renders a :class:`~repro.obs.metrics.
  MetricsRegistry` (or one of its snapshots) in the Prometheus text
  exposition format, one ``# TYPE`` header per metric family.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Sequence, Union

from ..ioutil import write_text_atomic
from .metrics import MetricsRegistry
from .trace import Span, TraceCollector

__all__ = [
    "chrome_trace_events",
    "chrome_trace_json",
    "write_chrome_trace",
    "prometheus_lines",
    "prometheus_text",
    "write_prometheus",
]

SpanLike = Union[Span, Dict[str, Any]]


def _span_dicts(
    source: Union[TraceCollector, Sequence[SpanLike]]
) -> List[Dict[str, Any]]:
    if isinstance(source, TraceCollector):
        return source.snapshot()
    return [s.to_dict() if isinstance(s, Span) else dict(s) for s in source]


def chrome_trace_events(
    source: Union[TraceCollector, Sequence[SpanLike]]
) -> List[Dict[str, Any]]:
    """Spans as a list of Trace Event Format "complete" events."""
    spans = _span_dicts(source)
    finite_starts = [s["start"] for s in spans if math.isfinite(s["start"])]
    t0 = min(finite_starts) if finite_starts else 0.0
    events: List[Dict[str, Any]] = []
    for s in spans:
        start, end = s["start"], s["end"]
        if not (math.isfinite(start) and math.isfinite(end)):
            continue
        args = dict(s.get("attrs") or {})
        args["span_id"] = s["id"]
        if s.get("parent") is not None:
            args["parent_id"] = s["parent"]
        events.append(
            {
                "name": s["name"],
                "cat": "repro",
                "ph": "X",
                "ts": (start - t0) * 1e6,
                "dur": max(0.0, end - start) * 1e6,
                "pid": s.get("pid", 0),
                # Real thread id when the span carries one; spans from older
                # snapshots (no ``tid``) fall back to one row per process.
                "tid": s.get("tid") or s.get("pid", 0),
                "args": args,
            }
        )
    events.sort(key=lambda e: e["ts"])
    return events


def chrome_trace_json(
    source: Union[TraceCollector, Sequence[SpanLike]], indent: int = None
) -> str:
    """The Chrome trace as a strict-JSON array string."""
    return json.dumps(chrome_trace_events(source), indent=indent, allow_nan=False)


def write_chrome_trace(
    path: str, source: Union[TraceCollector, Sequence[SpanLike]]
) -> None:
    write_text_atomic(path, chrome_trace_json(source) + "\n")


# ----------------------------------------------------------------------


def _fmt_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def prometheus_lines(
    source: Union[MetricsRegistry, Dict[str, Any]]
) -> List[str]:
    """Prometheus text exposition lines for a registry or snapshot."""
    if isinstance(source, MetricsRegistry):
        registry = source
    else:
        registry = MetricsRegistry()
        registry.merge(source)
    lines: List[str] = []
    for name in sorted(registry.counters):
        lines.append(f"# TYPE {name} counter")
        for key in sorted(registry.counters[name]):
            value = registry.counters[name][key]
            lines.append(f"{name}{key} {_fmt_value(value)}")
    for name in sorted(registry.gauges):
        lines.append(f"# TYPE {name} gauge")
        for key in sorted(registry.gauges[name]):
            value = registry.gauges[name][key]
            lines.append(f"{name}{key} {_fmt_value(value)}")
    for name in sorted(registry.histograms):
        lines.append(f"# TYPE {name} histogram")
        for key in sorted(registry.histograms[name]):
            hist = registry.histograms[name][key]
            bare = key[1:-1] if key else ""
            cumulative = 0
            for bound, count in zip(
                list(hist.bounds) + [math.inf], hist.counts
            ):
                cumulative += count
                le = _fmt_value(bound) if math.isfinite(bound) else "+Inf"
                labels = f'{bare},le="{le}"' if bare else f'le="{le}"'
                lines.append(f"{name}_bucket{{{labels}}} {cumulative}")
            lines.append(f"{name}_sum{key} {_fmt_value(hist.sum)}")
            lines.append(f"{name}_count{key} {hist.count}")
    return lines


def prometheus_text(source: Union[MetricsRegistry, Dict[str, Any]]) -> str:
    return "\n".join(prometheus_lines(source)) + "\n"


def write_prometheus(
    path: str, source: Union[MetricsRegistry, Dict[str, Any]]
) -> None:
    write_text_atomic(path, prometheus_text(source))

"""Terminal watcher for live campaign status files.

``python -m repro obs watch status.json`` polls the file written by
:class:`repro.obs.status.StatusWriter` and redraws a compact progress
view until the campaign reports a terminal state.  ``--once`` renders a
single frame and exits (for scripts and CI).  Reads are tolerant: a
missing or torn file renders as "waiting", never a crash.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, Optional, TextIO

from .status import _LIVENESS_WINDOW, read_status

__all__ = ["render_status", "watch"]

_BAR_WIDTH = 30
_TERMINAL_STATES = ("done", "failed", "aborted")


def _fmt_duration(seconds: Optional[float]) -> str:
    if seconds is None:
        return "?"
    seconds = max(0.0, seconds)
    if seconds < 60:
        return f"{seconds:.0f}s"
    if seconds < 3600:
        return f"{int(seconds // 60)}m{int(seconds % 60):02d}s"
    return f"{int(seconds // 3600)}h{int(seconds % 3600 // 60):02d}m"


def _bar(done: int, total: int) -> str:
    if total <= 0:
        return "-" * _BAR_WIDTH
    filled = int(_BAR_WIDTH * min(1.0, done / total))
    return "#" * filled + "." * (_BAR_WIDTH - filled)


def render_status(doc: Dict[str, Any]) -> str:
    """One status document as a small multi-line text frame."""
    total = int(doc.get("total") or 0)
    done = int(doc.get("done") or 0)
    pct = f"{100.0 * done / total:.0f}%" if total else "?"
    lines = [
        f"repro {doc.get('campaign', '?')} — {doc.get('state', '?')}",
        f"[{_bar(done, total)}] {done}/{total} ({pct})",
    ]
    counts = " · ".join(
        f"{key} {doc.get(key, 0)}"
        for key in ("ok", "failed", "retried", "quarantined", "resumed")
    )
    lines.append(counts)
    rate = doc.get("throughput")
    lines.append(
        "throughput "
        + (f"{rate:.1f} items/s" if rate else "?")
        + f" · eta {_fmt_duration(doc.get('eta_seconds'))}"
        + f" · elapsed {_fmt_duration(doc.get('elapsed_seconds'))}"
    )
    workers = doc.get("workers") or {}
    alive = [pid for pid, age in workers.items() if age <= _LIVENESS_WINDOW]
    if workers:
        lines.append(
            f"workers {len(alive)}/{len(workers)} alive"
            + (f" (pids {', '.join(sorted(alive))})" if alive else "")
        )
    journal = doc.get("journal")
    if journal:
        lines.append(
            f"journal {journal.get('path', '?')} · "
            f"{journal.get('appended', 0)} appended"
        )
    by_status = doc.get("by_status") or {}
    extras = {k: v for k, v in by_status.items() if k != "ok"}
    if extras:
        lines.append(
            "statuses " + " · ".join(f"{k}={v}" for k, v in extras.items())
        )
    return "\n".join(lines)


def watch(
    path: str,
    interval: float = 2.0,
    once: bool = False,
    stream: Optional[TextIO] = None,
) -> int:
    """Render ``path`` until the campaign finishes; exit code for the CLI.

    ``--once`` semantics: render a single frame; exit 0 when the file
    parsed, 1 when it is missing/unreadable (so CI can assert on it).
    """
    stream = stream if stream is not None else sys.stdout
    clear = not once and stream.isatty()
    try:
        while True:
            doc = read_status(path)
            if once:
                if doc is None:
                    print(f"no readable status at {path}", file=stream)
                    return 1
                print(render_status(doc), file=stream)
                return 0
            if clear:
                stream.write("\x1b[2J\x1b[H")
            if doc is None:
                print(f"waiting for status file {path} ...", file=stream)
            else:
                print(render_status(doc), file=stream)
                if doc.get("state") in _TERMINAL_STATES:
                    return 0
            stream.flush()
            try:
                time.sleep(interval)
            except KeyboardInterrupt:
                return 0
    except BrokenPipeError:
        # ``watch ... | head`` closes our stdout mid-frame; that is the
        # reader saying "enough", not an error.
        try:
            stream.close()
        except OSError:
            pass
        return 0

"""One-stop observability sessions for CLI commands and scripts.

:func:`observe` bundles the enable/disable bookkeeping of
:mod:`repro.obs.trace` and :mod:`repro.obs.metrics` behind a single
context manager and writes the requested artifacts on exit::

    from repro.obs import observe

    with observe(trace_out="trace.json", metrics_out="metrics.prom",
                 detail=True) as session:
        run_analysis(...)
    # trace.json now holds a Chrome trace, metrics.prom a Prometheus dump

Either output may be omitted; tracing activates whenever a trace sink (or
``force_trace``) is requested, metrics whenever a metrics sink (or
``force_metrics``) is.  The previous process-local state is restored on
exit, so sessions nest safely around code that manages its own obs state.

``profile_out`` / ``profile_mem_out`` additionally run the block under
:class:`repro.obs.profile.Profiler` and drop collapsed-stack
(flamegraph-ready) text artifacts on exit.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from . import metrics as _metrics
from . import trace as _trace
from .export import chrome_trace_events, write_chrome_trace, write_prometheus
from .profile import Profiler

__all__ = ["ObsSession", "observe"]


class ObsSession:
    """Handles to the collector/registry active inside :func:`observe`."""

    def __init__(
        self,
        collector: Optional[_trace.TraceCollector],
        registry: Optional[_metrics.MetricsRegistry],
        profiler: Optional[Profiler] = None,
    ) -> None:
        self.collector = collector
        self.registry = registry
        self.profiler = profiler

    @property
    def enabled(self) -> bool:
        return self.collector is not None or self.registry is not None

    def trace_events(self) -> List[Dict[str, Any]]:
        """Chrome trace events collected so far (empty without tracing)."""
        return chrome_trace_events(self.collector) if self.collector else []

    def metrics_snapshot(self) -> Dict[str, Any]:
        return self.registry.snapshot() if self.registry else {}

    def embed_block(self) -> Dict[str, Any]:
        """The ``observability`` block embedded in schema-v1 payloads."""
        block: Dict[str, Any] = {}
        if self.collector is not None:
            block["trace"] = self.trace_events()
        if self.registry is not None:
            block["metrics"] = self.metrics_snapshot()
        return block


@contextmanager
def observe(
    trace_out: Optional[str] = None,
    metrics_out: Optional[str] = None,
    detail: bool = False,
    force_trace: bool = False,
    force_metrics: bool = False,
    profile_out: Optional[str] = None,
    profile_mem_out: Optional[str] = None,
) -> Iterator[ObsSession]:
    """Enable tracing/metrics for a block and write artifacts on exit."""
    want_trace = force_trace or trace_out is not None
    want_metrics = force_metrics or metrics_out is not None
    want_profile = profile_out is not None or profile_mem_out is not None
    prev_collector = _trace.active_collector()
    prev_detail = _trace.detail_enabled()
    prev_registry = _metrics.active_metrics()

    collector = _trace.enable_tracing(detail=detail) if want_trace else None
    registry = _metrics.enable_metrics() if want_metrics else None
    profiler = (
        Profiler(mem=profile_mem_out is not None) if want_profile else None
    )
    session = ObsSession(collector, registry, profiler)
    if profiler is not None:
        profiler.start()
    try:
        yield session
    finally:
        if profiler is not None:
            profiler.stop()
        if want_trace:
            if prev_collector is not None:
                _trace.enable_tracing(detail=prev_detail, collector=prev_collector)
            else:
                _trace.disable_tracing()
        if want_metrics:
            if prev_registry is not None:
                _metrics.enable_metrics(prev_registry)
            else:
                _metrics.disable_metrics()
        if collector is not None and trace_out is not None:
            write_chrome_trace(trace_out, collector)
        if registry is not None and metrics_out is not None:
            write_prometheus(metrics_out, registry)
        if profiler is not None and profile_out is not None:
            profiler.write(profile_out)
        if profiler is not None and profile_mem_out is not None:
            profiler.write_memory(profile_mem_out)

"""Structured tracing: spans, a process-local collector, cheap no-ops.

A *span* is a named, timed region of work with key/value attributes and a
parent -- the innermost span open when it started.  Spans are recorded by
a process-local :class:`TraceCollector`; when no collector is active (the
default) every tracing entry point degrades to a shared, allocation-free
no-op, so instrumented code pays one module-global load per call site.

Times are stored as wall-clock epoch seconds derived from a single
``(time.time(), time.perf_counter())`` anchor taken when the collector is
created: within one process spans keep ``perf_counter`` precision, and
spans captured in different processes (the batch engine's pool workers)
land on a common axis so a merged trace lines up in a viewer.

Typical use::

    from repro.obs import enable_tracing, trace_span, traced

    collector = enable_tracing()
    with trace_span("analyze", method="SPP/Exact") as span:
        ...
        span.set_attrs(rounds=3)
    events = collector.snapshot()          # JSON-safe span dicts

Worker-side traces cross the process-pool boundary as those snapshot
dicts and are re-rooted into the parent's collector with
:meth:`TraceCollector.ingest`.
"""

from __future__ import annotations

import functools
import math
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = [
    "Span",
    "TraceCollector",
    "enable_tracing",
    "disable_tracing",
    "tracing",
    "tracing_enabled",
    "detail_enabled",
    "active_collector",
    "trace_span",
    "traced",
    "set_span_attrs",
]

#: Finished spans kept per collector before further ones are counted as
#: dropped instead of stored (a runaway-detail backstop, not a quota).
DEFAULT_MAX_SPANS = 200_000


@dataclass
class Span:
    """One named, timed region; ``end`` is NaN while the span is open."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start: float  #: wall-clock epoch seconds
    end: float = float("nan")
    attrs: Dict[str, Any] = field(default_factory=dict)
    pid: int = 0
    tid: int = 0

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attrs": {k: _json_safe(v) for k, v in self.attrs.items()},
            "pid": self.pid,
            "tid": self.tid,
        }


def _json_safe(value: Any) -> Any:
    if isinstance(value, float):
        # Strict-JSON exporters reject NaN/Infinity; stringify those.
        return value if math.isfinite(value) else str(value)
    if isinstance(value, (bool, int, str)) or value is None:
        return value
    return str(value)


class TraceCollector:
    """Process-local span store with an open-span stack.

    The collector is single-threaded by design -- every analysis path in
    this package is; cross-process concurrency goes through
    :meth:`snapshot` / :meth:`ingest` instead of shared state.
    """

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS) -> None:
        self.max_spans = max_spans
        self.spans: List[Span] = []
        self.dropped = 0
        self._stack: List[Span] = []
        self._next_id = 1
        self._anchor_wall = time.time()
        self._anchor_perf = time.perf_counter()
        self._pid = os.getpid()

    # ------------------------------------------------------------------

    def now(self) -> float:
        """Wall-clock epoch seconds with ``perf_counter`` resolution."""
        return self._anchor_wall + (time.perf_counter() - self._anchor_perf)

    def _epoch(self, perf_time: float) -> float:
        return self._anchor_wall + (perf_time - self._anchor_perf)

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def start_span(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> Span:
        span = Span(
            span_id=self._next_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            name=name,
            start=self.now(),
            attrs=dict(attrs) if attrs else {},
            pid=self._pid,
            tid=threading.get_ident(),
        )
        self._next_id += 1
        self._stack.append(span)
        return span

    def end_span(self, span: Span) -> None:
        # Tolerate exception-driven unwinding: close any inner spans left
        # open above ``span`` on the stack rather than corrupting it.
        while self._stack:
            top = self._stack.pop()
            top.end = self.now()
            self._store(top)
            if top is span:
                return

    def record(
        self,
        name: str,
        start_perf: float,
        duration: float,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Append an already-finished span (retroactive, e.g. a timed op)."""
        start = self._epoch(start_perf)
        self._store(
            Span(
                span_id=self._alloc_id(),
                parent_id=self._stack[-1].span_id if self._stack else None,
                name=name,
                start=start,
                end=start + duration,
                attrs=dict(attrs) if attrs else {},
                pid=self._pid,
                tid=threading.get_ident(),
            )
        )

    def _alloc_id(self) -> int:
        span_id = self._next_id
        self._next_id += 1
        return span_id

    def _store(self, span: Span) -> None:
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return
        self.spans.append(span)

    # ------------------------------------------------------------------

    def snapshot(self) -> List[Dict[str, Any]]:
        """Finished spans as JSON-safe dicts (pool-boundary currency)."""
        return [s.to_dict() for s in self.spans]

    def ingest(
        self,
        span_dicts: List[Dict[str, Any]],
        parent_id: Optional[int] = None,
    ) -> None:
        """Merge a snapshot from another process into this collector.

        Ids are remapped into this collector's id space; sub-trace roots
        (spans whose parent is absent from the snapshot) are attached
        under ``parent_id``, or under the currently open span when
        ``parent_id`` is None.
        """
        if parent_id is None and self._stack:
            parent_id = self._stack[-1].span_id
        known = {d["id"] for d in span_dicts}
        remap: Dict[int, int] = {}
        for d in span_dicts:
            remap[d["id"]] = self._alloc_id()
        for d in span_dicts:
            parent = d.get("parent")
            if parent in known:
                new_parent: Optional[int] = remap[parent]
            else:
                new_parent = parent_id
            self._store(
                Span(
                    span_id=remap[d["id"]],
                    parent_id=new_parent,
                    name=d["name"],
                    start=float(d["start"]),
                    end=float(d["end"]),
                    attrs=dict(d.get("attrs") or {}),
                    pid=int(d.get("pid", 0)),
                    tid=int(d.get("tid", 0)),
                )
            )


# ----------------------------------------------------------------------
# process-local activation
# ----------------------------------------------------------------------

_COLLECTOR: Optional[TraceCollector] = None
_DETAIL = False


def enable_tracing(
    detail: bool = False,
    collector: Optional[TraceCollector] = None,
    max_spans: int = DEFAULT_MAX_SPANS,
) -> TraceCollector:
    """Activate span collection for this process.

    ``detail`` additionally records per-curve-op spans (see
    :mod:`repro.curves.ops`) -- the heaviest layer, off by default.
    Passing an explicit ``collector`` installs that instance; otherwise a
    fresh collector replaces whatever was active.
    """
    global _COLLECTOR, _DETAIL
    _COLLECTOR = collector if collector is not None else TraceCollector(max_spans)
    _DETAIL = bool(detail)
    return _COLLECTOR


def disable_tracing() -> Optional[TraceCollector]:
    """Deactivate span collection; returns the collector that was active."""
    global _COLLECTOR, _DETAIL
    collector, _COLLECTOR = _COLLECTOR, None
    _DETAIL = False
    return collector


def tracing_enabled() -> bool:
    return _COLLECTOR is not None


def detail_enabled() -> bool:
    """True when curve-op level spans should be recorded."""
    return _DETAIL and _COLLECTOR is not None


def active_collector() -> Optional[TraceCollector]:
    return _COLLECTOR


@contextmanager
def tracing(
    detail: bool = False, max_spans: int = DEFAULT_MAX_SPANS
) -> Iterator[TraceCollector]:
    """Scope tracing to a ``with`` block, restoring the prior state."""
    global _COLLECTOR, _DETAIL
    prev, prev_detail = _COLLECTOR, _DETAIL
    collector = TraceCollector(max_spans)
    _COLLECTOR, _DETAIL = collector, bool(detail)
    try:
        yield collector
    finally:
        _COLLECTOR, _DETAIL = prev, prev_detail


# ----------------------------------------------------------------------
# span entry points
# ----------------------------------------------------------------------


class _NullSpan:
    """Shared no-op handle returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set_attrs(self, **attrs: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _SpanHandle:
    """Context manager binding one live span to a collector."""

    __slots__ = ("_collector", "_name", "_attrs", "_span")

    def __init__(
        self, collector: TraceCollector, name: str, attrs: Dict[str, Any]
    ) -> None:
        self._collector = collector
        self._name = name
        self._attrs = attrs
        self._span: Optional[Span] = None

    def __enter__(self) -> "_SpanHandle":
        self._span = self._collector.start_span(self._name, self._attrs)
        return self

    def __exit__(self, *exc: object) -> bool:
        if self._span is not None:
            self._collector.end_span(self._span)
        return False

    def set_attrs(self, **attrs: Any) -> None:
        if self._span is not None:
            self._span.attrs.update(attrs)
        else:
            self._attrs.update(attrs)


def trace_span(name: str, **attrs: Any):
    """Open a span for a ``with`` block; a shared no-op when disabled."""
    collector = _COLLECTOR
    if collector is None:
        return _NULL_SPAN
    return _SpanHandle(collector, name, attrs)


def traced(name: Optional[str] = None, **attrs: Any) -> Callable:
    """Decorator form of :func:`trace_span` (span named after the callee)."""

    def decorate(fn: Callable) -> Callable:
        label = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any):
            if _COLLECTOR is None:
                return fn(*args, **kwargs)
            with trace_span(label, **attrs):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


def set_span_attrs(**attrs: Any) -> None:
    """Attach attributes to the innermost open span, if tracing is on."""
    collector = _COLLECTOR
    if collector is not None:
        span = collector.current
        if span is not None:
            span.attrs.update(attrs)

"""Process-local metrics: named counters, gauges and timing histograms.

A :class:`MetricsRegistry` stores three families keyed by metric name plus
an optional label set:

* **counters** -- monotone totals (``repro_memo_hits_total``);
* **gauges** -- last-written values (``repro_batch_queue_wait_last_seconds``);
* **histograms** -- log-bucketed timing distributions with ``sum`` and
  ``count`` (``repro_curve_op_seconds``).

Like tracing (:mod:`repro.obs.trace`), metrics are opt in per process:
the module-level helpers :func:`inc`, :func:`set_gauge`, :func:`observe`
and :func:`timer` are cheap no-ops until :func:`enable_metrics` installs
an active registry.  Registries cross the batch engine's process-pool
boundary as :meth:`MetricsRegistry.snapshot` dicts and are folded back
with :meth:`MetricsRegistry.merge` (counters and histograms add, gauges
take the incoming value).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "DEFAULT_BUCKETS",
    "MetricsRegistry",
    "enable_metrics",
    "disable_metrics",
    "metrics_enabled",
    "active_metrics",
    "metrics",
    "inc",
    "set_gauge",
    "observe",
    "timer",
]

#: Histogram bucket upper bounds in seconds (log-spaced; +Inf is implicit).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 60.0,
)


def _escape_label_value(value: Any) -> str:
    """Escape a label value per the Prometheus text exposition format."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _label_key(labels: Dict[str, Any]) -> str:
    """Canonical ``{k="v",...}`` suffix (empty string when unlabeled).

    Label values are escaped at storage time so lookups, merges and the
    Prometheus exporter all agree on one canonical key.
    """
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label_value(labels[k])}"' for k in sorted(labels)
    )
    return "{" + inner + "}"


class _Histogram:
    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # trailing slot = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        slot = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                slot = i
                break
        self.counts[slot] += 1
        self.sum += value
        self.count += 1

    def to_dict(self) -> Dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }

    def merge(self, data: Dict[str, Any]) -> None:
        bounds = tuple(data.get("bounds", DEFAULT_BUCKETS))
        counts = data.get("counts", [])
        if bounds != self.bounds or len(counts) != len(self.counts):
            raise ValueError("cannot merge histograms with different buckets")
        for i, c in enumerate(counts):
            self.counts[i] += int(c)
        self.sum += float(data.get("sum", 0.0))
        self.count += int(data.get("count", 0))


class MetricsRegistry:
    """Counter/gauge/histogram store; see the module docstring."""

    def __init__(self) -> None:
        # name -> label-suffix -> value / histogram
        self.counters: Dict[str, Dict[str, float]] = {}
        self.gauges: Dict[str, Dict[str, float]] = {}
        self.histograms: Dict[str, Dict[str, _Histogram]] = {}

    # ------------------------------------------------------------------

    def inc(self, name: str, value: float = 1.0, **labels: Any) -> None:
        series = self.counters.setdefault(name, {})
        key = _label_key(labels)
        series[key] = series.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        self.gauges.setdefault(name, {})[_label_key(labels)] = float(value)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        series = self.histograms.setdefault(name, {})
        key = _label_key(labels)
        hist = series.get(key)
        if hist is None:
            hist = series[key] = _Histogram()
        hist.observe(value)

    @contextmanager
    def timer(self, name: str, **labels: Any) -> Iterator[None]:
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - t0, **labels)

    # ------------------------------------------------------------------

    def counter_value(self, name: str, **labels: Any) -> float:
        """Sum of a counter across label sets (or one labeled series)."""
        series = self.counters.get(name, {})
        if labels:
            return series.get(_label_key(labels), 0.0)
        return sum(series.values())

    def gauge_value(self, name: str, **labels: Any) -> Optional[float]:
        return self.gauges.get(name, {}).get(_label_key(labels))

    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe dump of every series (pool-boundary currency)."""
        return {
            "counters": {n: dict(s) for n, s in self.counters.items()},
            "gauges": {n: dict(s) for n, s in self.gauges.items()},
            "histograms": {
                n: {k: h.to_dict() for k, h in s.items()}
                for n, s in self.histograms.items()
            },
        }

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold a snapshot in: counters/histograms add, gauges overwrite."""
        for name, series in (snapshot.get("counters") or {}).items():
            for key, value in series.items():
                dst = self.counters.setdefault(name, {})
                dst[key] = dst.get(key, 0.0) + float(value)
        for name, series in (snapshot.get("gauges") or {}).items():
            for key, value in series.items():
                self.gauges.setdefault(name, {})[key] = float(value)
        for name, series in (snapshot.get("histograms") or {}).items():
            for key, data in series.items():
                dst = self.histograms.setdefault(name, {})
                hist = dst.get(key)
                if hist is None:
                    hist = dst[key] = _Histogram(
                        tuple(data.get("bounds", DEFAULT_BUCKETS))
                    )
                    hist.counts = [0] * (len(hist.bounds) + 1)
                hist.merge(data)

    def names(self) -> List[str]:
        out = set(self.counters) | set(self.gauges) | set(self.histograms)
        return sorted(out)


# ----------------------------------------------------------------------
# process-local activation
# ----------------------------------------------------------------------

_REGISTRY: Optional[MetricsRegistry] = None


def enable_metrics(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Install a registry for this process (fresh unless one is passed)."""
    global _REGISTRY
    _REGISTRY = registry if registry is not None else MetricsRegistry()
    return _REGISTRY


def disable_metrics() -> Optional[MetricsRegistry]:
    """Deactivate metrics; returns the registry that was active."""
    global _REGISTRY
    registry, _REGISTRY = _REGISTRY, None
    return registry


def metrics_enabled() -> bool:
    return _REGISTRY is not None


def active_metrics() -> Optional[MetricsRegistry]:
    return _REGISTRY


@contextmanager
def metrics() -> Iterator[MetricsRegistry]:
    """Scope a fresh registry to a ``with`` block, restoring prior state."""
    global _REGISTRY
    prev = _REGISTRY
    _REGISTRY = MetricsRegistry()
    try:
        yield _REGISTRY
    finally:
        _REGISTRY = prev


def inc(name: str, value: float = 1.0, **labels: Any) -> None:
    registry = _REGISTRY
    if registry is not None:
        registry.inc(name, value, **labels)


def set_gauge(name: str, value: float, **labels: Any) -> None:
    registry = _REGISTRY
    if registry is not None:
        registry.set_gauge(name, value, **labels)


def observe(name: str, value: float, **labels: Any) -> None:
    registry = _REGISTRY
    if registry is not None:
        registry.observe(name, value, **labels)


@contextmanager
def timer(name: str, **labels: Any) -> Iterator[None]:
    registry = _REGISTRY
    if registry is None:
        yield
        return
    with registry.timer(name, **labels):
        yield

"""Opt-in profiling: collapsed-stack (flamegraph-ready) text artifacts.

Two complementary samplers, both stdlib-only:

* **CPU** -- a :mod:`cProfile` run over the observed block, folded into
  collapsed stacks by walking the caller graph and distributing each
  function's own time over the call paths that reach it (proportionally
  to per-edge cumulative time, the standard flamegraph approximation for
  deterministic profiles).  One output line per path::

      main;run_adaptive;_sweep_once;service_transform 12345

  with integer microsecond weights -- exactly what ``flamegraph.pl``,
  speedscope and Brendan Gregg's tooling consume.
* **Memory** -- a :mod:`tracemalloc` snapshot at the end of the block,
  with the top allocation tracebacks folded the same way (weights in
  bytes).

Both are wired through :func:`repro.obs.session.observe` (and the CLI's
``--profile-out`` / ``--profile-mem-out`` flags); they are off unless a
path is given, so production runs pay nothing.
"""

from __future__ import annotations

import cProfile
import pstats
from typing import Any, Dict, List, Optional, Tuple

from ..ioutil import write_text_atomic

__all__ = [
    "Profiler",
    "collapse_profile",
    "collapse_tracemalloc",
]

#: Allocation tracebacks kept in the memory artifact.
_MEM_TOP = 50
#: Frames recorded per allocation traceback.
_MEM_DEPTH = 16


def _frame_label(func: Tuple[str, int, str]) -> str:
    """``file:function`` label for one pstats function key."""
    filename, lineno, name = func
    if filename == "~":  # built-in, e.g. "<built-in method builtins.sum>"
        label = name
    else:
        label = f"{filename.rsplit('/', 1)[-1]}:{name}"
    # Semicolons and spaces are the collapsed-format separators.
    return label.replace(";", ",").replace(" ", "_")


def collapse_profile(profiler: cProfile.Profile) -> List[str]:
    """Fold a finished profile into collapsed-stack lines.

    Own (inline) time of every function is attributed to each call path
    that reaches it from a root, split proportionally to the cumulative
    time of the incoming edges.  Recursive edges are cut at the first
    repeat, so pathological cycles terminate (their weight stays on the
    shorter path).
    """
    try:
        stats = pstats.Stats(profiler).stats  # {func: (cc, nc, tt, ct, callers)}
    except TypeError:  # profile never ran: nothing to fold
        return []
    callees: Dict[Any, List[Tuple[Any, float]]] = {}
    total_in: Dict[Any, float] = {}
    for func, (_cc, _nc, _tt, _ct, callers) in stats.items():
        for caller, edge in callers.items():
            edge_ct = edge[3] if isinstance(edge, tuple) else float(edge)
            callees.setdefault(caller, []).append((func, edge_ct))
            total_in[func] = total_in.get(func, 0.0) + edge_ct

    weights: Dict[Tuple[str, ...], float] = {}

    def descend(func: Any, path: Tuple[str, ...], share: float) -> None:
        # Prune vanishing shares and over-deep paths: keeps the DFS
        # linear-ish on big caller graphs at no visible cost in the
        # flamegraph (sub-microsecond slivers are invisible anyway).
        if share < 1e-6 or len(path) > 96:
            return
        label = _frame_label(func)
        if label in path:  # recursion: keep the weight on the outer frame
            return
        path = path + (label,)
        own = stats[func][2] * share
        if own > 0.0:
            weights[path] = weights.get(path, 0.0) + own
        for child, edge_ct in callees.get(func, ()):
            denominator = total_in.get(child, 0.0)
            if denominator > 0.0:
                descend(child, path, share * edge_ct / denominator)

    roots = [func for func in stats if func not in total_in]
    for root in roots:
        descend(root, (), 1.0)

    lines = [
        f"{';'.join(path)} {max(1, round(seconds * 1e6))}"
        for path, seconds in sorted(weights.items())
        if seconds > 0.0
    ]
    return lines


def collapse_tracemalloc(snapshot: Any, top: int = _MEM_TOP) -> List[str]:
    """Top allocation tracebacks as collapsed stacks weighted in bytes."""
    stats = snapshot.statistics("traceback")[:top]
    lines: List[str] = []
    for stat in stats:
        frames = [
            f"{frame.filename.rsplit('/', 1)[-1]}:{frame.lineno}".replace(
                ";", ","
            ).replace(" ", "_")
            for frame in stat.traceback
        ]
        if not frames:
            continue
        # tracemalloc stores the allocation site last; flamegraphs read
        # root-to-leaf, which is already the traceback order.
        lines.append(f"{';'.join(frames)} {stat.size}")
    return lines


class Profiler:
    """Scoped CPU (and optionally memory) profiler with text export.

    ``with Profiler(mem=True) as prof: ...`` then
    ``prof.write("profile.txt")`` / ``prof.write_memory("mem.txt")``.
    """

    def __init__(self, mem: bool = False) -> None:
        self.mem = mem
        self._profile = cProfile.Profile()
        self._snapshot: Optional[Any] = None
        self._mem_was_tracing = False

    def start(self) -> None:
        if self.mem:
            import tracemalloc

            self._mem_was_tracing = tracemalloc.is_tracing()
            if not self._mem_was_tracing:
                tracemalloc.start(_MEM_DEPTH)
        self._profile.enable()

    def stop(self) -> None:
        self._profile.disable()
        if self.mem:
            import tracemalloc

            if tracemalloc.is_tracing():
                self._snapshot = tracemalloc.take_snapshot()
                if not self._mem_was_tracing:
                    tracemalloc.stop()

    def __enter__(self) -> "Profiler":
        self.start()
        return self

    def __exit__(self, *exc: object) -> bool:
        self.stop()
        return False

    # ------------------------------------------------------------------

    def collapsed_stacks(self) -> List[str]:
        return collapse_profile(self._profile)

    def memory_stacks(self) -> List[str]:
        if self._snapshot is None:
            return []
        return collapse_tracemalloc(self._snapshot)

    def write(self, path: str) -> None:
        write_text_atomic(path, "\n".join(self.collapsed_stacks()) + "\n")

    def write_memory(self, path: str) -> None:
        write_text_atomic(path, "\n".join(self.memory_stacks()) + "\n")

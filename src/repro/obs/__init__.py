"""``repro.obs`` -- zero-dependency observability for the analysis stack.

Three small, composable layers (no third-party imports anywhere):

* :mod:`repro.obs.trace` -- spans (``trace_span`` context manager /
  ``traced`` decorator) recorded by a process-local collector that is a
  shared no-op until enabled;
* :mod:`repro.obs.metrics` -- a registry of named counters, gauges and
  log-bucketed timing histograms with the same opt-in discipline;
* :mod:`repro.obs.export` -- Chrome/Perfetto ``trace_event`` JSON and
  Prometheus text renderers, plus :func:`repro.obs.session.observe`,
  the one-call session wrapper the CLI builds on.

The instrumented layers are the curve kernels and memo cache
(:mod:`repro.curves`), every registered analyzer (per-analyzer spans with
per-job/hop children, horizon rounds, fixpoint sweeps), the batch engine
(worker-side spans and metrics serialized back across the pool boundary)
and the audit runner.  ``docs/observability.md`` documents the span
taxonomy and metric names.
"""

from .export import (
    chrome_trace_events,
    chrome_trace_json,
    prometheus_lines,
    prometheus_text,
    write_chrome_trace,
    write_prometheus,
)
from .metrics import (
    MetricsRegistry,
    active_metrics,
    disable_metrics,
    enable_metrics,
    inc,
    metrics_enabled,
    set_gauge,
    timer,
)
from .metrics import metrics as metrics_session
from .metrics import observe as observe_value
from .profile import Profiler, collapse_profile, collapse_tracemalloc
from .report import build_report, write_report
from .session import ObsSession, observe
from .status import (
    STATUS_KIND,
    STATUS_SCHEMA_VERSION,
    StatusWriter,
    read_status,
)
from .trace import (
    Span,
    TraceCollector,
    active_collector,
    detail_enabled,
    disable_tracing,
    enable_tracing,
    set_span_attrs,
    trace_span,
    traced,
    tracing,
    tracing_enabled,
)

# Keep the package attributes ``metrics``/``trace``/... bound to the
# submodules (the from-imports above must not shadow them: callers rely on
# ``repro.obs.metrics.active_metrics()`` reading live module state).
from . import (  # noqa: E402, F401
    export,
    metrics,
    profile,
    report,
    session,
    status,
    trace,
    watch,
)

__all__ = [
    "Span",
    "TraceCollector",
    "enable_tracing",
    "disable_tracing",
    "tracing",
    "tracing_enabled",
    "detail_enabled",
    "active_collector",
    "trace_span",
    "traced",
    "set_span_attrs",
    "MetricsRegistry",
    "enable_metrics",
    "disable_metrics",
    "metrics_session",
    "metrics_enabled",
    "active_metrics",
    "inc",
    "set_gauge",
    "observe_value",
    "timer",
    "chrome_trace_events",
    "chrome_trace_json",
    "prometheus_lines",
    "prometheus_text",
    "write_chrome_trace",
    "write_prometheus",
    "ObsSession",
    "observe",
    "STATUS_SCHEMA_VERSION",
    "STATUS_KIND",
    "StatusWriter",
    "read_status",
    "Profiler",
    "collapse_profile",
    "collapse_tracemalloc",
    "build_report",
    "write_report",
]

"""Offline HTML run reports: one self-contained, zero-dependency file.

``python -m repro obs report`` combines whatever artifacts a run left
behind -- a live status file (:mod:`repro.obs.status`), a Chrome trace, a
Prometheus metrics dump, a schema-v1 analysis result with a
``convergence`` block, a collapsed-stack profile -- into a single HTML
document with inline CSS, inline SVG charts and an inline JSON copy of
the source data (``<script type="application/json">``) for machine
re-use.  No JavaScript frameworks, no network fetches: the file opens
from disk, forever.

Charts follow one discipline: status colors only for campaign health
(paired with text labels, never color alone), a single hue for magnitude
bars, a single-series line for the convergence curve, data tables next
to every chart, and automatic dark mode via CSS custom properties.
"""

from __future__ import annotations

import html
import json
import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..ioutil import write_text_atomic
from .status import read_status

__all__ = ["build_report", "write_report"]

#: Campaign-health colors by outcome; statuses are states, so they wear
#: the reserved status palette and always ship with a text label.
_STATUS_COLORS = {
    "ok": "var(--status-good)",
    "error": "var(--status-critical)",
    "timeout": "var(--status-serious)",
    "crash": "var(--status-critical)",
    "quarantined": "var(--status-warning)",
}
_STATUS_FALLBACK = "var(--status-serious)"

_CSS = """
:root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --ink: #0b0b0b;
  --ink-2: #52514e;
  --muted: #898781;
  --grid: #e1e0d9;
  --axis: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6;
  --status-good: #0ca30c;
  --status-warning: #fab219;
  --status-serious: #ec835a;
  --status-critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --ink: #ffffff;
    --ink-2: #c3c2b7;
    --muted: #898781;
    --grid: #2c2c2a;
    --axis: #383835;
    --border: rgba(255,255,255,0.10);
    --series-1: #3987e5;
  }
}
body {
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--page); color: var(--ink);
  margin: 0; padding: 2rem; line-height: 1.45;
}
main { max-width: 64rem; margin: 0 auto; }
h1 { font-size: 1.4rem; margin: 0 0 0.25rem; }
h2 { font-size: 1.05rem; margin: 0 0 0.75rem; }
.sub { color: var(--ink-2); margin: 0 0 1.5rem; font-size: 0.9rem; }
section {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 1.25rem 1.5rem; margin-bottom: 1.25rem;
}
table { border-collapse: collapse; font-size: 0.85rem; width: 100%; }
th { text-align: left; color: var(--ink-2); font-weight: 600; }
th, td { padding: 0.25rem 0.9rem 0.25rem 0; border-bottom: 1px solid var(--grid); }
td.num { font-variant-numeric: tabular-nums; text-align: right; }
th.num { text-align: right; }
.tiles { display: flex; flex-wrap: wrap; gap: 1.5rem; margin: 0.25rem 0 0.75rem; }
.tile .v { font-size: 1.6rem; font-weight: 650; }
.tile .k { color: var(--ink-2); font-size: 0.8rem; }
svg text { font-family: inherit; }
.note { color: var(--muted); font-size: 0.8rem; }
code { font-size: 0.85em; }
"""


# ----------------------------------------------------------------------
# tolerant artifact loaders
# ----------------------------------------------------------------------


def _load_json(path: Optional[str]) -> Optional[Any]:
    if path is None:
        return None
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None


def _load_text(path: Optional[str]) -> Optional[str]:
    if path is None:
        return None
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return fh.read()
    except OSError:
        return None


def parse_prometheus(text: str) -> List[Tuple[str, str, float]]:
    """``(name, label-suffix, value)`` samples from exposition text."""
    samples: List[Tuple[str, str, float]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        series, _, raw = line.rpartition(" ")
        try:
            value = float(raw)
        except ValueError:
            continue
        if "{" in series:
            name, _, rest = series.partition("{")
            labels = "{" + rest
        else:
            name, labels = series, ""
        samples.append((name, labels, value))
    return samples


def parse_collapsed(text: str) -> List[Tuple[str, int]]:
    """``(stack, weight)`` pairs from collapsed-stack text, heaviest first."""
    pairs: List[Tuple[str, int]] = []
    for line in text.splitlines():
        stack, _, raw = line.rpartition(" ")
        if not stack:
            continue
        try:
            pairs.append((stack, int(raw)))
        except ValueError:
            continue
    pairs.sort(key=lambda p: -p[1])
    return pairs


def _convergence_points(result: Dict[str, Any]) -> List[Tuple[int, float]]:
    """Global sweep index -> finite residual, across all rounds."""
    block = result.get("convergence") or {}
    rounds = block.get("rounds")
    if rounds is None:
        rounds = [block] if block else []
    points: List[Tuple[int, float]] = []
    index = 0
    for rnd in rounds:
        for sweep in rnd.get("sweeps") or []:
            index += 1
            residual = sweep.get("residual")
            if isinstance(residual, (int, float)) and residual > 0:
                points.append((index, float(residual)))
    return points


# ----------------------------------------------------------------------
# inline-SVG charts
# ----------------------------------------------------------------------


def _svg_hbars(
    items: Sequence[Tuple[str, float, Optional[str]]],
    fmt: str = "{:g}",
    width: int = 640,
) -> str:
    """Horizontal bar chart; ``items`` are (label, value, css-color)."""
    if not items:
        return ""
    row_h, gap, label_w, pad = 22, 2, 220, 8
    chart_w = width - label_w - 90
    height = len(items) * (row_h + gap) + pad
    top = max(value for _label, value, _c in items) or 1.0
    parts = [
        f'<svg role="img" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">'
    ]
    y = pad // 2
    for label, value, color in items:
        w = max(1.0, chart_w * value / top)
        fill = color or "var(--series-1)"
        text = html.escape(fmt.format(value))
        parts.append(
            f'<g><title>{html.escape(label)}: {text}</title>'
            f'<text x="{label_w - 8}" y="{y + row_h - 7}" text-anchor="end" '
            f'font-size="12" fill="var(--ink-2)">{html.escape(label[:36])}</text>'
            f'<rect x="{label_w}" y="{y}" width="{w:.1f}" height="{row_h - 4}" '
            f'rx="4" fill="{fill}" stroke="var(--surface-1)" stroke-width="2"/>'
            f'<text x="{label_w + w + 6:.1f}" y="{y + row_h - 7}" '
            f'font-size="12" fill="var(--ink)">{text}</text></g>'
        )
        y += row_h + gap
    parts.append("</svg>")
    return "".join(parts)


def _svg_residual_line(
    points: Sequence[Tuple[int, float]], width: int = 640, height: int = 240
) -> str:
    """Single-series log-y line of max residual per sweep."""
    if len(points) < 2:
        return ""
    pad_l, pad_r, pad_t, pad_b = 64, 16, 12, 28
    xs = [p[0] for p in points]
    ys = [math.log10(p[1]) for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if y_hi - y_lo < 1e-12:
        y_hi = y_lo + 1.0
    plot_w = width - pad_l - pad_r
    plot_h = height - pad_t - pad_b

    def px(x: float) -> float:
        return pad_l + plot_w * (x - x_lo) / max(1, x_hi - x_lo)

    def py(y: float) -> float:
        return pad_t + plot_h * (1 - (y - y_lo) / (y_hi - y_lo))

    parts = [
        f'<svg role="img" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">'
    ]
    # decade gridlines + tick labels
    for decade in range(math.floor(y_lo), math.ceil(y_hi) + 1):
        if not (y_lo <= decade <= y_hi):
            continue
        gy = py(decade)
        parts.append(
            f'<line x1="{pad_l}" y1="{gy:.1f}" x2="{width - pad_r}" '
            f'y2="{gy:.1f}" stroke="var(--grid)" stroke-width="1"/>'
            f'<text x="{pad_l - 8}" y="{gy + 4:.1f}" text-anchor="end" '
            f'font-size="11" fill="var(--muted)">1e{decade}</text>'
        )
    parts.append(
        f'<line x1="{pad_l}" y1="{height - pad_b}" x2="{width - pad_r}" '
        f'y2="{height - pad_b}" stroke="var(--axis)" stroke-width="1"/>'
        f'<text x="{(pad_l + width - pad_r) // 2}" y="{height - 8}" '
        f'text-anchor="middle" font-size="11" fill="var(--muted)">sweep</text>'
    )
    path = " ".join(
        f"{'M' if i == 0 else 'L'}{px(x):.1f},{py(math.log10(v)):.1f}"
        for i, (x, v) in enumerate(points)
    )
    parts.append(
        f'<path d="{path}" fill="none" stroke="var(--series-1)" '
        f'stroke-width="2" stroke-linejoin="round"/>'
    )
    for x, v in points:
        parts.append(
            f'<circle cx="{px(x):.1f}" cy="{py(math.log10(v)):.1f}" r="4" '
            f'fill="var(--series-1)" stroke="var(--surface-1)" stroke-width="2">'
            f"<title>sweep {x}: residual {v:.3g}</title></circle>"
        )
    parts.append("</svg>")
    return "".join(parts)


# ----------------------------------------------------------------------
# sections
# ----------------------------------------------------------------------


def _tile(value: str, key: str) -> str:
    return (
        f'<div class="tile"><div class="v">{html.escape(value)}</div>'
        f'<div class="k">{html.escape(key)}</div></div>'
    )


def _section_status(status: Dict[str, Any]) -> str:
    rate = status.get("throughput")
    tiles = [
        _tile(str(status.get("done", 0)), f"of {status.get('total', 0)} done"),
        _tile(str(status.get("ok", 0)), "ok"),
        _tile(str(status.get("failed", 0)), "failed"),
        _tile(f"{rate:.1f}/s" if rate else "–", "throughput"),
        _tile(str(status.get("state", "?")), "state"),
    ]
    by_status = status.get("by_status") or {}
    bars = [
        (name, float(count), _STATUS_COLORS.get(name, _STATUS_FALLBACK))
        for name, count in sorted(by_status.items(), key=lambda kv: -kv[1])
    ]
    rows = "".join(
        f"<tr><td>{html.escape(k)}</td><td class='num'>{v}</td></tr>"
        for k, v in sorted(by_status.items())
    )
    extras = " · ".join(
        f"{key} {status.get(key, 0)}" for key in ("retried", "quarantined", "resumed")
    )
    return (
        "<section><h2>Campaign health</h2>"
        f'<div class="tiles">{"".join(tiles)}</div>'
        + _svg_hbars(bars, fmt="{:.0f}")
        + f"<table><tr><th>status</th><th class='num'>items</th></tr>{rows}</table>"
        + f'<p class="note">{html.escape(extras)}</p></section>'
    )


def _section_convergence(result: Dict[str, Any]) -> str:
    points = _convergence_points(result)
    block = result.get("convergence") or {}
    rounds = block.get("rounds") or []
    rows = "".join(
        f"<tr><td class='num'>{r.get('round', i + 1)}</td>"
        f"<td class='num'>{r.get('horizon', '')}</td>"
        f"<td class='num'>{r.get('n_sweeps', '')}</td>"
        f"<td>{'yes' if r.get('stable') else 'no'}</td>"
        f"<td>{'yes' if r.get('drained') else 'no'}</td></tr>"
        for i, r in enumerate(rounds)
    )
    chart = _svg_residual_line(points)
    if not chart:
        chart = '<p class="note">fewer than two finite residuals recorded</p>'
    return (
        "<section><h2>Fixpoint convergence</h2>"
        + chart
        + "<table><tr><th class='num'>round</th><th class='num'>horizon</th>"
        "<th class='num'>sweeps</th><th>stable</th><th>drained</th></tr>"
        + rows
        + "</table></section>"
    )


def _section_spans(trace: List[Dict[str, Any]]) -> str:
    finished = [e for e in trace if isinstance(e.get("dur"), (int, float))]
    slowest = sorted(finished, key=lambda e: -e["dur"])[:12]
    bars = [
        (str(e.get("name", "?")), e["dur"] / 1e3, None) for e in slowest
    ]
    counts: Dict[str, int] = {}
    for e in finished:
        counts[str(e.get("name", "?"))] = counts.get(str(e.get("name", "?")), 0) + 1
    rows = "".join(
        f"<tr><td>{html.escape(name)}</td><td class='num'>{n}</td></tr>"
        for name, n in sorted(counts.items(), key=lambda kv: -kv[1])[:20]
    )
    return (
        "<section><h2>Slowest spans (ms)</h2>"
        + _svg_hbars(bars, fmt="{:.2f}")
        + "<table><tr><th>span</th><th class='num'>count</th></tr>"
        + rows
        + "</table></section>"
    )


def _section_metrics(samples: List[Tuple[str, str, float]]) -> str:
    rows = "".join(
        f"<tr><td><code>{html.escape(name + labels)}</code></td>"
        f"<td class='num'>{value:g}</td></tr>"
        for name, labels, value in samples
        if not name.endswith("_bucket")  # buckets swamp the table
    )
    return (
        "<section><h2>Metrics</h2>"
        "<table><tr><th>series</th><th class='num'>value</th></tr>"
        + rows
        + '<tr><td class="note" colspan="2">histogram buckets elided; '
        "full series in the embedded JSON</td></tr></table></section>"
    )


def _section_profile(pairs: List[Tuple[str, int]]) -> str:
    top = pairs[:12]
    bars = [(stack.rsplit(";", 1)[-1], float(w), None) for stack, w in top]
    rows = "".join(
        f"<tr><td><code>{html.escape(stack[-120:])}</code></td>"
        f"<td class='num'>{w}</td></tr>"
        for stack, w in top
    )
    return (
        "<section><h2>Hottest profile stacks</h2>"
        + _svg_hbars(bars, fmt="{:.0f}")
        + "<table><tr><th>collapsed stack (tail)</th>"
        "<th class='num'>weight</th></tr>"
        + rows
        + '<p class="note">full collapsed-stack file renders in any '
        "flamegraph tool (flamegraph.pl, speedscope)</p></table></section>"
    )


# ----------------------------------------------------------------------


def build_report(
    status: Optional[str] = None,
    trace: Optional[str] = None,
    metrics: Optional[str] = None,
    result: Optional[str] = None,
    profile: Optional[str] = None,
    title: str = "repro run report",
) -> str:
    """Assemble the HTML document from whichever artifacts exist."""
    status_doc = read_status(status) if status else None
    trace_doc = _load_json(trace)
    result_doc = _load_json(result)
    metrics_text = _load_text(metrics)
    profile_text = _load_text(profile)

    sections: List[str] = []
    if status_doc:
        sections.append(_section_status(status_doc))
    if result_doc and isinstance(result_doc, dict):
        if result_doc.get("convergence"):
            sections.append(_section_convergence(result_doc))
    if isinstance(trace_doc, list) and trace_doc:
        sections.append(_section_spans(trace_doc))
    if metrics_text:
        sections.append(_section_metrics(parse_prometheus(metrics_text)))
    if profile_text:
        pairs = parse_collapsed(profile_text)
        if pairs:
            sections.append(_section_profile(pairs))
    if not sections:
        sections.append(
            "<section><p>No readable artifacts were provided.</p></section>"
        )

    # Machine-readable copy of the inputs, trimmed so the report stays
    # small: the result drops any embedded observability block (it can
    # carry a full trace) and only the heaviest profile stacks ride along.
    result_trim = (
        {k: v for k, v in result_doc.items() if k != "observability"}
        if isinstance(result_doc, dict)
        else result_doc
    )
    profile_top = parse_collapsed(profile_text)[:200] if profile_text else None
    embedded = json.dumps(
        {
            "status": status_doc,
            "result": result_trim,
            "metrics": metrics_text,
            "profile_top": profile_top,
        },
        allow_nan=False,
        default=str,
    ).replace("</", "<\\/")  # keep </script> out of the inline block

    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>{html.escape(title)}</title>\n"
        f"<style>{_CSS}</style></head>\n"
        "<body><main>\n"
        f"<h1>{html.escape(title)}</h1>\n"
        '<p class="sub">self-contained report generated by '
        "<code>python -m repro obs report</code></p>\n"
        + "\n".join(sections)
        + '\n<script type="application/json" id="report-data">'
        + embedded
        + "</script>\n</main></body></html>\n"
    )


def write_report(path: str, **kwargs: Any) -> None:
    write_text_atomic(path, build_report(**kwargs))

"""JSON (de)serialization of systems.

Lets users describe a distributed real-time system declaratively and run
the analyses from the command line (``python -m repro``).  The format:

.. code-block:: json

    {
      "policies": {"cpu": "spp", "nic": "fcfs"},
      "default_policy": "spp",
      "priority_assignment": "proportional_deadline",
      "jobs": [
        {
          "id": "control",
          "deadline": 20.0,
          "arrivals": {"type": "periodic", "period": 10.0},
          "route": [["cpu", 2.0], ["nic", 1.0]]
        },
        {
          "id": "stream",
          "deadline": 25.0,
          "arrivals": {"type": "bursty", "x": 0.2},
          "route": [["cpu", 1.0], ["nic", 2.0]]
        }
      ]
    }

Arrival types: ``periodic`` (period, offset), ``bursty`` (x, Eq. 27),
``sporadic`` (min_gap, offset), ``leaky_bucket`` (rho, sigma), ``trace``
(times).  Priority assignments: ``proportional_deadline`` (Eq. 24,
default), ``deadline_monotonic``, ``rate_monotonic``, ``explicit`` (then
each route hop is ``[processor, wcet, priority]``), or ``none``.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from .arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    LeakyBucketArrivals,
    PeriodicArrivals,
    SporadicArrivals,
    TraceArrivals,
)
from .job import Job, JobSet, SubJob
from .priorities import (
    assign_priorities_deadline_monotonic,
    assign_priorities_proportional_deadline,
    assign_priorities_rate_monotonic,
)
from .system import System

__all__ = [
    "SystemFormatError",
    "system_to_dict",
    "system_from_dict",
    "load_system",
    "save_system",
]


class SystemFormatError(ValueError):
    """A system description is malformed.

    Unlike the ad-hoc ``ValueError`` s the model classes raise one at a
    time, this error is raised once per :func:`system_from_dict` call and
    carries *every* problem found in the description.  Each entry of
    :attr:`errors` is a dict with the keys

    * ``job`` -- the offending job's id (or its list position as
      ``"jobs[i]"`` when the id itself is missing), or ``None`` for
      top-level problems;
    * ``hop`` -- the 0-based route hop index, or ``None``;
    * ``field`` -- the offending field name, or ``None``;
    * ``message`` -- a human-readable description.

    Subclasses ``ValueError`` so existing ``except ValueError`` callers
    keep working.
    """

    def __init__(self, errors: List[Dict[str, Any]]) -> None:
        self.errors = list(errors)
        n = len(self.errors)
        lines = [_format_error(e) for e in self.errors]
        super().__init__(
            f"invalid system description ({n} error{'s' if n != 1 else ''}):\n  "
            + "\n  ".join(lines)
        )


def _format_error(entry: Dict[str, Any]) -> str:
    where = []
    if entry.get("job") is not None:
        where.append(f"job {entry['job']!r}")
    if entry.get("hop") is not None:
        where.append(f"hop {entry['hop']}")
    if entry.get("field") is not None:
        where.append(f"field {entry['field']!r}")
    prefix = ", ".join(where)
    return f"{prefix}: {entry['message']}" if prefix else str(entry["message"])


def _number_problem(
    value: Any, *, positive: bool = False, nonnegative: bool = False
) -> Optional[str]:
    """Describe what is wrong with a numeric field, or None if valid."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return f"expected a number, got {value!r}"
    v = float(value)
    if math.isnan(v):
        return "must not be NaN"
    if math.isinf(v):
        return "must be finite"
    if positive and v <= 0:
        return f"must be positive, got {v:g}"
    if nonnegative and v < 0:
        return f"must be non-negative, got {v:g}"
    return None


#: Per arrival type: required then optional numeric fields with their
#: constraints (class constructors enforce the remaining cross-field rules).
_ARRIVAL_FIELDS: Dict[str, Dict[str, Dict[str, bool]]] = {
    "periodic": {
        "required": {"period": {"positive": True}},
        "optional": {"offset": {"nonnegative": True}},
    },
    "bursty": {"required": {"x": {"positive": True}}, "optional": {}},
    "sporadic": {
        "required": {"min_gap": {"positive": True}},
        "optional": {"offset": {"nonnegative": True}},
    },
    "leaky_bucket": {
        "required": {"rho": {"positive": True}},
        "optional": {"sigma": {"nonnegative": True}},
    },
}


def _arrivals_to_dict(arrivals: ArrivalProcess) -> Dict[str, Any]:
    if isinstance(arrivals, PeriodicArrivals):
        return {"type": "periodic", "period": arrivals.period, "offset": arrivals.offset}
    if isinstance(arrivals, BurstyArrivals):
        return {"type": "bursty", "x": arrivals.x}
    if isinstance(arrivals, SporadicArrivals):
        return {"type": "sporadic", "min_gap": arrivals.min_gap, "offset": arrivals.offset}
    if isinstance(arrivals, LeakyBucketArrivals):
        return {"type": "leaky_bucket", "rho": arrivals.rho, "sigma": arrivals.sigma}
    if isinstance(arrivals, TraceArrivals):
        return {"type": "trace", "times": list(arrivals.times)}
    raise TypeError(f"cannot serialize arrival process {type(arrivals).__name__}")


def _arrivals_from_dict(data: Dict[str, Any]) -> ArrivalProcess:
    kind = data.get("type")
    if kind == "periodic":
        return PeriodicArrivals(float(data["period"]), float(data.get("offset", 0.0)))
    if kind == "bursty":
        return BurstyArrivals(float(data["x"]))
    if kind == "sporadic":
        return SporadicArrivals(float(data["min_gap"]), float(data.get("offset", 0.0)))
    if kind == "leaky_bucket":
        return LeakyBucketArrivals(float(data["rho"]), float(data.get("sigma", 1.0)))
    if kind == "trace":
        return TraceArrivals([float(t) for t in data["times"]])
    raise ValueError(f"unknown arrival type {kind!r}")


def system_to_dict(system: System) -> Dict[str, Any]:
    """Serialize a system (including any assigned priorities)."""
    jobs: List[Dict[str, Any]] = []
    explicit = system.job_set.priorities_assigned()
    for job in system.job_set:
        route = []
        for sub in job.subjobs:
            if sub.nonpreemptive_section > 0:
                hop = {"processor": sub.processor, "wcet": sub.wcet}
                if explicit:
                    hop["priority"] = sub.priority
                hop["nonpreemptive_section"] = sub.nonpreemptive_section
                route.append(hop)
            else:
                route.append(
                    [sub.processor, sub.wcet]
                    + ([sub.priority] if explicit else [])
                )
        entry = {
            "id": job.job_id,
            "deadline": job.deadline,
            "arrivals": _arrivals_to_dict(job.arrivals),
            "route": route,
        }
        if job.release_jitter > 0:
            entry["release_jitter"] = job.release_jitter
        jobs.append(entry)
    return {
        "policies": {str(p): system.policy(p).value for p in system.processors},
        "priority_assignment": "explicit" if explicit else "none",
        "jobs": jobs,
    }


def _validate_arrivals(
    job_ref: str, arr: Any, errors: List[Dict[str, Any]]
) -> Optional[ArrivalProcess]:
    """Check an arrivals sub-dict, collecting problems; None on failure."""

    def err(field: Optional[str], message: str) -> None:
        errors.append(
            {"job": job_ref, "hop": None, "field": field, "message": message}
        )

    if not isinstance(arr, dict):
        err("arrivals", f"expected an object, got {arr!r}")
        return None
    kind = arr.get("type")
    if kind == "trace":
        times = arr.get("times")
        if not isinstance(times, (list, tuple)):
            err("arrivals.times", f"expected a list of times, got {times!r}")
            return None
        bad = False
        for i, t in enumerate(times):
            problem = _number_problem(t, nonnegative=True)
            if problem:
                err(f"arrivals.times[{i}]", problem)
                bad = True
        if bad:
            return None
    elif kind in _ARRIVAL_FIELDS:
        spec = _ARRIVAL_FIELDS[kind]
        bad = False
        for field, constraints in spec["required"].items():
            if field not in arr:
                err(f"arrivals.{field}", f"required by type {kind!r}")
                bad = True
                continue
            problem = _number_problem(arr[field], **constraints)
            if problem:
                err(f"arrivals.{field}", problem)
                bad = True
        for field, constraints in spec["optional"].items():
            if field in arr:
                problem = _number_problem(arr[field], **constraints)
                if problem:
                    err(f"arrivals.{field}", problem)
                    bad = True
        if bad:
            return None
    else:
        err("arrivals.type", f"unknown arrival type {kind!r}")
        return None
    try:
        return _arrivals_from_dict(arr)
    except ValueError as exc:
        # Cross-field rules enforced by the arrival classes themselves
        # (e.g. strictly increasing traces, sigma >= 1).
        err("arrivals", str(exc))
        return None


def system_from_dict(data: Dict[str, Any]) -> System:
    """Build a system from its dictionary description and assign
    priorities per ``priority_assignment`` (default Eq. 24).

    Raises :class:`SystemFormatError` -- carrying *all* problems found,
    each with job id / hop index / field context -- when the description
    is malformed.
    """
    errors: List[Dict[str, Any]] = []

    def err(
        job: Optional[str], hop: Optional[int], field: Optional[str], message: str
    ) -> None:
        errors.append({"job": job, "hop": hop, "field": field, "message": message})

    if not isinstance(data, dict):
        raise SystemFormatError(
            [
                {
                    "job": None,
                    "hop": None,
                    "field": None,
                    "message": f"system description must be an object, "
                    f"got {type(data).__name__}",
                }
            ]
        )
    assignment = data.get("priority_assignment", "proportional_deadline")
    known_assignments = (
        "proportional_deadline",
        "deadline_monotonic",
        "rate_monotonic",
        "explicit",
        "none",
    )
    if assignment not in known_assignments:
        err(
            None,
            None,
            "priority_assignment",
            f"unknown priority_assignment {assignment!r} "
            f"(expected one of {', '.join(known_assignments)})",
        )
    jobs_data = data.get("jobs")
    if not isinstance(jobs_data, list):
        err(None, None, "jobs", f"expected a list of jobs, got {jobs_data!r}")
        raise SystemFormatError(errors)

    jobs: List[Job] = []
    seen_ids: set = set()
    for pos, jd in enumerate(jobs_data):
        ref = f"jobs[{pos}]"
        if not isinstance(jd, dict):
            err(ref, None, None, f"expected a job object, got {jd!r}")
            continue
        job_id = jd.get("id")
        if not isinstance(job_id, str) or not job_id:
            err(ref, None, "id", f"expected a non-empty string, got {job_id!r}")
            job_ref = ref
            job_id = None
        else:
            job_ref = job_id
            if job_id in seen_ids:
                err(job_ref, None, "id", "duplicate job id")
            seen_ids.add(job_id)
        job_bad = False

        deadline = jd.get("deadline")
        problem = (
            "required field is missing"
            if "deadline" not in jd
            else _number_problem(deadline, positive=True)
        )
        if problem:
            err(job_ref, None, "deadline", problem)
            job_bad = True

        jitter = jd.get("release_jitter", 0.0)
        problem = _number_problem(jitter, nonnegative=True)
        if problem:
            err(job_ref, None, "release_jitter", problem)
            job_bad = True

        arrivals = _validate_arrivals(job_ref, jd.get("arrivals"), errors)
        if arrivals is None:
            job_bad = True

        route = jd.get("route")
        if not isinstance(route, list) or not route:
            err(job_ref, None, "route", f"expected a non-empty list, got {route!r}")
            continue
        subjobs: List[SubJob] = []
        for idx, hop in enumerate(route):
            if isinstance(hop, dict):
                proc = hop.get("processor")
                wcet = hop.get("wcet")
                prio = hop.get("priority")
                masked = hop.get("nonpreemptive_section", 0.0)
                if proc is None:
                    err(job_ref, idx, "processor", "required field is missing")
                    job_bad = True
                if "wcet" not in hop:
                    err(job_ref, idx, "wcet", "required field is missing")
                    job_bad = True
                    continue
            elif isinstance(hop, (list, tuple)) and len(hop) >= 2:
                proc, wcet = hop[0], hop[1]
                prio = hop[2] if len(hop) > 2 else None
                masked = 0.0
            else:
                err(
                    job_ref,
                    idx,
                    None,
                    f"expected [processor, wcet(, priority)] or an object, "
                    f"got {hop!r}",
                )
                job_bad = True
                continue
            problem = _number_problem(wcet, positive=True)
            if problem:
                err(job_ref, idx, "wcet", problem)
                job_bad = True
                continue
            problem = _number_problem(masked, nonnegative=True)
            if problem:
                err(job_ref, idx, "nonpreemptive_section", problem)
                job_bad = True
                continue
            if prio is not None and (isinstance(prio, bool) or not isinstance(prio, int)):
                err(job_ref, idx, "priority", f"expected an integer, got {prio!r}")
                job_bad = True
                continue
            try:
                subjobs.append(
                    SubJob(
                        job_id=job_id or ref,
                        index=len(subjobs),
                        processor=proc,
                        wcet=float(wcet),
                        priority=prio,
                        nonpreemptive_section=float(masked),
                    )
                )
            except ValueError as exc:
                err(job_ref, idx, None, str(exc))
                job_bad = True
        if job_bad or job_id is None or len(subjobs) != len(route):
            continue
        try:
            jobs.append(
                Job(
                    job_id=job_id,
                    subjobs=subjobs,
                    arrivals=arrivals,
                    deadline=float(deadline),
                    release_jitter=float(jitter),
                )
            )
        except ValueError as exc:
            err(job_ref, None, None, str(exc))

    if errors:
        raise SystemFormatError(errors)

    try:
        system = System(
            JobSet(jobs),
            policies=data.get("policies") or None,
            default_policy=data.get("default_policy", "spp"),
        )
    except ValueError as exc:
        raise SystemFormatError(
            [{"job": None, "hop": None, "field": "policies", "message": str(exc)}]
        ) from exc
    if assignment == "proportional_deadline":
        assign_priorities_proportional_deadline(system)
    elif assignment == "deadline_monotonic":
        assign_priorities_deadline_monotonic(system)
    elif assignment == "rate_monotonic":
        assign_priorities_rate_monotonic(system)
    return system


def load_system(path: Union[str, Path]) -> System:
    """Load a system description from a JSON file."""
    with open(path) as fh:
        return system_from_dict(json.load(fh))


def save_system(system: System, path: Union[str, Path]) -> None:
    """Write a system description to a JSON file."""
    with open(path, "w") as fh:
        json.dump(system_to_dict(system), fh, indent=2, default=str)
        fh.write("\n")

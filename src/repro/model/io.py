"""JSON (de)serialization of systems.

Lets users describe a distributed real-time system declaratively and run
the analyses from the command line (``python -m repro``).  The format:

.. code-block:: json

    {
      "policies": {"cpu": "spp", "nic": "fcfs"},
      "default_policy": "spp",
      "priority_assignment": "proportional_deadline",
      "jobs": [
        {
          "id": "control",
          "deadline": 20.0,
          "arrivals": {"type": "periodic", "period": 10.0},
          "route": [["cpu", 2.0], ["nic", 1.0]]
        },
        {
          "id": "stream",
          "deadline": 25.0,
          "arrivals": {"type": "bursty", "x": 0.2},
          "route": [["cpu", 1.0], ["nic", 2.0]]
        }
      ]
    }

Arrival types: ``periodic`` (period, offset), ``bursty`` (x, Eq. 27),
``sporadic`` (min_gap, offset), ``leaky_bucket`` (rho, sigma), ``trace``
(times).  Priority assignments: ``proportional_deadline`` (Eq. 24,
default), ``deadline_monotonic``, ``rate_monotonic``, ``explicit`` (then
each route hop is ``[processor, wcet, priority]``), or ``none``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from .arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    LeakyBucketArrivals,
    PeriodicArrivals,
    SporadicArrivals,
    TraceArrivals,
)
from .job import Job, JobSet, SubJob
from .priorities import (
    assign_priorities_deadline_monotonic,
    assign_priorities_proportional_deadline,
    assign_priorities_rate_monotonic,
)
from .system import System

__all__ = ["system_to_dict", "system_from_dict", "load_system", "save_system"]


def _arrivals_to_dict(arrivals: ArrivalProcess) -> Dict[str, Any]:
    if isinstance(arrivals, PeriodicArrivals):
        return {"type": "periodic", "period": arrivals.period, "offset": arrivals.offset}
    if isinstance(arrivals, BurstyArrivals):
        return {"type": "bursty", "x": arrivals.x}
    if isinstance(arrivals, SporadicArrivals):
        return {"type": "sporadic", "min_gap": arrivals.min_gap, "offset": arrivals.offset}
    if isinstance(arrivals, LeakyBucketArrivals):
        return {"type": "leaky_bucket", "rho": arrivals.rho, "sigma": arrivals.sigma}
    if isinstance(arrivals, TraceArrivals):
        return {"type": "trace", "times": list(arrivals.times)}
    raise TypeError(f"cannot serialize arrival process {type(arrivals).__name__}")


def _arrivals_from_dict(data: Dict[str, Any]) -> ArrivalProcess:
    kind = data.get("type")
    if kind == "periodic":
        return PeriodicArrivals(float(data["period"]), float(data.get("offset", 0.0)))
    if kind == "bursty":
        return BurstyArrivals(float(data["x"]))
    if kind == "sporadic":
        return SporadicArrivals(float(data["min_gap"]), float(data.get("offset", 0.0)))
    if kind == "leaky_bucket":
        return LeakyBucketArrivals(float(data["rho"]), float(data.get("sigma", 1.0)))
    if kind == "trace":
        return TraceArrivals([float(t) for t in data["times"]])
    raise ValueError(f"unknown arrival type {kind!r}")


def system_to_dict(system: System) -> Dict[str, Any]:
    """Serialize a system (including any assigned priorities)."""
    jobs: List[Dict[str, Any]] = []
    explicit = system.job_set.priorities_assigned()
    for job in system.job_set:
        route = []
        for sub in job.subjobs:
            if sub.nonpreemptive_section > 0:
                hop = {"processor": sub.processor, "wcet": sub.wcet}
                if explicit:
                    hop["priority"] = sub.priority
                hop["nonpreemptive_section"] = sub.nonpreemptive_section
                route.append(hop)
            else:
                route.append(
                    [sub.processor, sub.wcet]
                    + ([sub.priority] if explicit else [])
                )
        entry = {
            "id": job.job_id,
            "deadline": job.deadline,
            "arrivals": _arrivals_to_dict(job.arrivals),
            "route": route,
        }
        if job.release_jitter > 0:
            entry["release_jitter"] = job.release_jitter
        jobs.append(entry)
    return {
        "policies": {str(p): system.policy(p).value for p in system.processors},
        "priority_assignment": "explicit" if explicit else "none",
        "jobs": jobs,
    }


def system_from_dict(data: Dict[str, Any]) -> System:
    """Build a system from its dictionary description and assign
    priorities per ``priority_assignment`` (default Eq. 24)."""
    jobs: List[Job] = []
    assignment = data.get("priority_assignment", "proportional_deadline")
    for jd in data["jobs"]:
        subjobs = []
        for idx, hop in enumerate(jd["route"]):
            if isinstance(hop, dict):
                proc = hop["processor"]
                wcet = float(hop["wcet"])
                prio = int(hop["priority"]) if "priority" in hop else None
                masked = float(hop.get("nonpreemptive_section", 0.0))
            else:
                proc, wcet = hop[0], float(hop[1])
                prio = int(hop[2]) if len(hop) > 2 else None
                masked = 0.0
            subjobs.append(
                SubJob(
                    job_id=jd["id"],
                    index=idx,
                    processor=proc,
                    wcet=wcet,
                    priority=prio,
                    nonpreemptive_section=masked,
                )
            )
        jobs.append(
            Job(
                job_id=jd["id"],
                subjobs=subjobs,
                arrivals=_arrivals_from_dict(jd["arrivals"]),
                deadline=float(jd["deadline"]),
                release_jitter=float(jd.get("release_jitter", 0.0)),
            )
        )
    system = System(
        JobSet(jobs),
        policies=data.get("policies") or None,
        default_policy=data.get("default_policy", "spp"),
    )
    if assignment == "proportional_deadline":
        assign_priorities_proportional_deadline(system)
    elif assignment == "deadline_monotonic":
        assign_priorities_deadline_monotonic(system)
    elif assignment == "rate_monotonic":
        assign_priorities_rate_monotonic(system)
    elif assignment in ("explicit", "none"):
        pass
    else:
        raise ValueError(f"unknown priority_assignment {assignment!r}")
    return system


def load_system(path: Union[str, Path]) -> System:
    """Load a system description from a JSON file."""
    with open(path) as fh:
        return system_from_dict(json.load(fh))


def save_system(system: System, path: Union[str, Path]) -> None:
    """Write a system description to a JSON file."""
    with open(path, "w") as fh:
        json.dump(system_to_dict(system), fh, indent=2, default=str)
        fh.write("\n")

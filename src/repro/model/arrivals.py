"""Arrival processes: release-time generators for the first subjob.

The paper (Section 3.1) models each job as an infinite sequence of
instances with strictly increasing release times ``t_{k,1,1} < t_{k,1,2} <
...`` and explicitly removes the classical periodicity assumption.  An
:class:`ArrivalProcess` generates the concrete release times of the first
subjob within an analysis horizon, and reports the long-run arrival *rate*
used for utilization accounting and drain estimation.

Implemented processes:

* :class:`PeriodicArrivals` -- Eq. 25, ``t_m = offset + (m-1) * period``;
* :class:`BurstyArrivals` -- Eq. 27,
  ``t_m = (1/x) * sqrt(x^2 + (m-1)^2) - 1``, a front-loaded burst whose
  inter-arrival times grow monotonically toward the asymptotic period
  ``1/x``;
* :class:`TraceArrivals` -- a finite, explicit release-time trace;
* :class:`SporadicArrivals` -- the densest trace compatible with a minimum
  inter-arrival time (the classical sporadic worst case);
* :class:`LeakyBucketArrivals` -- the densest trace compatible with a Cruz
  ``(sigma, rho)`` envelope: ``t_m = max(0, (m - sigma) / rho)``.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "ArrivalProcess",
    "PeriodicArrivals",
    "BurstyArrivals",
    "TraceArrivals",
    "SporadicArrivals",
    "LeakyBucketArrivals",
]


class ArrivalProcess(abc.ABC):
    """Generator of release times for a job's first subjob."""

    @abc.abstractmethod
    def release_times(self, t_end: float) -> np.ndarray:
        """All release times in ``[0, t_end)``, strictly increasing."""

    @property
    @abc.abstractmethod
    def rate(self) -> float:
        """Long-run arrivals per unit time (0 for finite traces)."""

    def count_by(self, t: float) -> int:
        """Number of instances released in ``[0, t]`` (arrival function)."""
        times = self.release_times(math.nextafter(t, math.inf))
        return int(np.count_nonzero(times <= t))

    def is_periodic(self) -> bool:
        """True if the process is strictly periodic (enables SPP/S&L)."""
        return False


@dataclass(frozen=True)
class PeriodicArrivals(ArrivalProcess):
    """Strictly periodic releases (paper Eq. 25 with an optional offset)."""

    period: float
    offset: float = 0.0

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("period must be positive")
        if self.offset < 0:
            raise ValueError("offset must be non-negative")

    def release_times(self, t_end: float) -> np.ndarray:
        if t_end <= self.offset:
            return np.empty(0)
        n = int(math.ceil((t_end - self.offset) / self.period))
        times = self.offset + self.period * np.arange(n)
        return times[times < t_end]

    @property
    def rate(self) -> float:
        return 1.0 / self.period

    def is_periodic(self) -> bool:
        return True


@dataclass(frozen=True)
class BurstyArrivals(ArrivalProcess):
    """The paper's bursty aperiodic process (Eq. 27).

    ``t_m = (1/x) * sqrt(x^2 + (m-1)^2) - 1`` for ``m = 1, 2, ...`` with
    ``x in (0, 1)``.  The first release is at ``t_1 = 0``; inter-arrival
    times start below the asymptotic period ``1/x`` and grow toward it, so
    the stream is a burst that relaxes into near-periodicity.
    """

    x: float

    def __post_init__(self) -> None:
        if not (0.0 < self.x):
            raise ValueError("x must be positive")

    def release_times(self, t_end: float) -> np.ndarray:
        x = self.x
        if t_end <= 0:
            return np.empty(0)
        # Invert t_m < t_end: m - 1 < sqrt((x*(t_end+1))^2 - x^2).
        arg = (x * (t_end + 1.0)) ** 2 - x * x
        if arg <= 0:
            n = 1
        else:
            n = int(math.floor(math.sqrt(arg))) + 2
        m = np.arange(1, n + 1, dtype=float)
        times = np.sqrt(x * x + (m - 1.0) ** 2) / x - 1.0
        return times[times < t_end]

    @property
    def rate(self) -> float:
        # Inter-arrival times converge to 1/x from below.
        return self.x


@dataclass(frozen=True)
class TraceArrivals(ArrivalProcess):
    """A finite explicit trace of release times."""

    times: Tuple[float, ...]

    def __init__(self, times: Sequence[float]) -> None:
        ts = tuple(sorted(float(t) for t in times))
        if any(t < 0 for t in ts):
            raise ValueError("release times must be non-negative")
        if any(b - a <= 0 for a, b in zip(ts, ts[1:])):
            raise ValueError("release times must be strictly increasing")
        object.__setattr__(self, "times", ts)

    def release_times(self, t_end: float) -> np.ndarray:
        arr = np.asarray(self.times)
        return arr[arr < t_end]

    @property
    def rate(self) -> float:
        return 0.0


@dataclass(frozen=True)
class SporadicArrivals(ArrivalProcess):
    """Densest trace with a minimum inter-arrival time (worst case).

    For schedulability analysis the worst-case realization of a sporadic
    stream is the periodic one at the minimum gap; this class makes that
    substitution explicit and self-documenting.
    """

    min_gap: float
    offset: float = 0.0

    def __post_init__(self) -> None:
        if self.min_gap <= 0:
            raise ValueError("min_gap must be positive")

    def release_times(self, t_end: float) -> np.ndarray:
        return PeriodicArrivals(self.min_gap, self.offset).release_times(t_end)

    @property
    def rate(self) -> float:
        return 1.0 / self.min_gap


@dataclass(frozen=True)
class LeakyBucketArrivals(ArrivalProcess):
    """Densest trace under a Cruz ``(sigma, rho)`` leaky-bucket envelope.

    The arrival function is upper-bounded by ``sigma + rho * t``; the
    densest compliant trace releases instance ``m`` at
    ``t_m = max(0, (m - sigma) / rho)``.  Instances inside the initial
    burst share release time 0 (the paper's strict-increase assumption is
    relaxed here; the analyses remain sound, see
    :func:`repro.curves.ops.fcfs_service_bounds`).
    """

    rho: float
    sigma: float = 1.0

    def __post_init__(self) -> None:
        if self.rho <= 0:
            raise ValueError("rho must be positive")
        if self.sigma < 1:
            raise ValueError("sigma must be at least 1 (first instance)")

    def release_times(self, t_end: float) -> np.ndarray:
        if t_end <= 0:
            return np.empty(0)
        n = int(math.floor(self.sigma + self.rho * t_end)) + 1
        m = np.arange(1, n + 1, dtype=float)
        times = np.maximum(0.0, (m - self.sigma) / self.rho)
        return times[times < t_end]

    @property
    def rate(self) -> float:
        return self.rho

"""Audsley's optimal priority assignment (OPA) on top of any analysis.

The paper's methods work "for arbitrary priority assignments" (Section
3.2) and cite the deadline-monotonic line of work (Audsley et al. [8],
Leung & Whitehead [22]).  This module implements Audsley's classic
bottom-up search *parameterized by an analysis*: a priority ordering is
derived (when one exists) such that the given schedulability test accepts
the system.

The algorithm assigns the **lowest** priority level first: a subjob may
take the lowest level if the analysis finds its job schedulable with all
still-unassigned subjobs at higher priorities; it then recurses on the
rest.  For schedulability tests that are *OPA-compatible* (a job's
verdict depends only on the set, not the order, of higher-priority
subjobs, and never improves when its own priority drops) the search is
optimal: it finds an ordering whenever one exists, in ``O(n^2)`` analysis
calls per processor instead of ``n!``.

Our per-hop analyses are OPA-compatible in that sense; the *exact*
distributed analysis is not strictly order-independent across processors
(a priority change reshapes downstream arrivals), so with
``SppExactAnalysis`` the search is a powerful heuristic rather than a
completeness guarantee -- the returned assignment is always verified by a
final full analysis either way.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from .job import JobSet, SubJob
from .system import System

__all__ = ["OpaResult", "audsley_assign"]

Key = Tuple[str, int]


@dataclass
class OpaResult:
    """Outcome of an Audsley search."""

    feasible: bool
    priorities: Dict[Key, int]
    analysis_calls: int

    def apply(self, system: System) -> None:
        """Write the found priorities into the system's subjobs."""
        if not self.feasible:
            raise ValueError("cannot apply an infeasible assignment")
        for sub in system.job_set.all_subjobs():
            sub.priority = self.priorities[sub.key]


def audsley_assign(
    system: System,
    schedulable: Callable[[System], bool],
    max_calls: int = 10_000,
) -> OpaResult:
    """Search for a feasible priority assignment with Audsley's algorithm.

    Parameters
    ----------
    system:
        The system to assign.  Existing priorities are ignored (and left
        untouched unless you call :meth:`OpaResult.apply`).
    schedulable:
        The schedulability test, e.g.
        ``lambda s: SpnpApproxAnalysis().analyze(s).schedulable``.  It is
        called on temporary priority assignments.
    max_calls:
        Safety cap on analysis invocations.

    Notes
    -----
    Levels are assigned per processor, lowest first.  While probing a
    candidate for the lowest remaining level, all not-yet-assigned subjobs
    on that processor share the top of the priority space (implemented by
    giving them distinct high priorities in arbitrary order -- order
    within the unassigned block must not matter for an OPA-compatible
    test).
    """
    job_set: JobSet = system.job_set
    saved = {s.key: s.priority for s in job_set.all_subjobs()}
    calls = 0

    try:
        assignment: Dict[Key, int] = {}
        for proc in job_set.processors:
            subs = list(job_set.subjobs_on(proc))
            n = len(subs)
            unassigned = list(subs)
            # Assign levels n, n-1, ..., 1 (larger = lower priority).
            for level in range(n, 0, -1):
                placed = False
                for candidate in list(unassigned):
                    if calls >= max_calls:
                        return OpaResult(False, {}, calls)
                    _probe(job_set, proc, assignment, unassigned, candidate, level)
                    calls += 1
                    if schedulable(system):
                        assignment[candidate.key] = level
                        unassigned.remove(candidate)
                        placed = True
                        break
                if not placed:
                    return OpaResult(False, {}, calls)
        # Final verification with the complete assignment in place.
        for sub in job_set.all_subjobs():
            sub.priority = assignment[sub.key]
        calls += 1
        ok = schedulable(system)
        return OpaResult(ok, dict(assignment) if ok else {}, calls)
    finally:
        for sub in job_set.all_subjobs():
            sub.priority = saved[sub.key]


def _probe(
    job_set: JobSet,
    proc,
    assignment: Dict[Key, int],
    unassigned: List[SubJob],
    candidate: SubJob,
    level: int,
) -> None:
    """Install a trial assignment: candidate at ``level``, other
    unassigned subjobs of ``proc`` packed above, fixed levels kept."""
    top = iter(range(1, len(unassigned)))
    for sub in job_set.subjobs_on(proc):
        if sub.key in assignment:
            sub.priority = assignment[sub.key]
        elif sub.key == candidate.key:
            sub.priority = level
        else:
            sub.priority = next(top)
    # Subjobs on other processors: keep any fixed assignment, otherwise
    # give them a deterministic provisional order so the analysis can run.
    for other in job_set.processors:
        if other == proc:
            continue
        counter = itertools.count(1)
        for sub in job_set.subjobs_on(other):
            sub.priority = assignment.get(sub.key, None) or next(counter)
    # Re-densify other processors to keep priorities unique per processor.
    for other in job_set.processors:
        if other == proc:
            continue
        subs = sorted(
            job_set.subjobs_on(other),
            key=lambda s: (s.priority, s.job_id, s.index),
        )
        for rank, sub in enumerate(subs, start=1):
            sub.priority = rank

"""Distributed system: a job set plus per-processor scheduling policies.

The paper analyzes systems whose processors run preemptive static priority
(SPP), non-preemptive static priority (SPNP), or first-come-first-served
(FCFS) schedulers -- possibly mixed within one system (Section 6,
"heterogeneous systems").  :class:`System` couples a
:class:`~repro.model.job.JobSet` with a policy per processor.
"""

from __future__ import annotations

import enum
from typing import Dict, Hashable, Iterable, Mapping, Union

from .job import Job, JobSet, SubJob

__all__ = ["SchedulingPolicy", "System"]


class SchedulingPolicy(enum.Enum):
    """Scheduler type of a processor."""

    SPP = "spp"  #: static priority, preemptive
    SPNP = "spnp"  #: static priority, non-preemptive
    FCFS = "fcfs"  #: first-come-first-served (non-preemptive)

    @classmethod
    def coerce(cls, value: Union["SchedulingPolicy", str]) -> "SchedulingPolicy":
        if isinstance(value, cls):
            return value
        return cls(value.lower())


class System:
    """A job set together with the scheduling policy of each processor.

    Parameters
    ----------
    job_set:
        The jobs to run.  A plain sequence of :class:`Job` is accepted.
    policies:
        Either a single policy applied to every processor, or a mapping
        ``processor -> policy``.  Unmapped processors default to
        ``default_policy``.
    default_policy:
        Policy used for processors absent from ``policies``.
    """

    def __init__(
        self,
        job_set: Union[JobSet, Iterable[Job]],
        policies: Union[
            SchedulingPolicy, str, Mapping[Hashable, Union[SchedulingPolicy, str]], None
        ] = None,
        default_policy: Union[SchedulingPolicy, str] = SchedulingPolicy.SPP,
    ) -> None:
        self.job_set = job_set if isinstance(job_set, JobSet) else JobSet(list(job_set))
        self._default = SchedulingPolicy.coerce(default_policy)
        self._policies: Dict[Hashable, SchedulingPolicy] = {}
        if policies is None:
            pass
        elif isinstance(policies, (SchedulingPolicy, str)):
            uniform = SchedulingPolicy.coerce(policies)
            self._default = uniform
        else:
            for proc, pol in policies.items():
                self._policies[proc] = SchedulingPolicy.coerce(pol)

    # -- policy lookup ------------------------------------------------------

    def policy(self, processor: Hashable) -> SchedulingPolicy:
        """Scheduling policy of the given processor."""
        return self._policies.get(processor, self._default)

    def policy_of(self, subjob: SubJob) -> SchedulingPolicy:
        return self.policy(subjob.processor)

    @property
    def processors(self):
        return self.job_set.processors

    @property
    def jobs(self):
        return self.job_set.jobs

    def is_uniform(self, policy: SchedulingPolicy) -> bool:
        """True if every used processor runs the given policy."""
        return all(self.policy(p) == policy for p in self.processors)

    def uses_priorities(self) -> bool:
        """True if any processor needs priorities (SPP or SPNP)."""
        return any(
            self.policy(p) in (SchedulingPolicy.SPP, SchedulingPolicy.SPNP)
            for p in self.processors
        )

    # -- validation ---------------------------------------------------------

    def validate(self) -> None:
        """Check model consistency before analysis or simulation.

        Priorities must be assigned on every SPP/SPNP processor and be
        unique per processor (ties would make the SPP service functions
        ill-defined; assignment policies in :mod:`repro.model.priorities`
        always break ties deterministically).
        """
        for proc in self.processors:
            pol = self.policy(proc)
            if pol == SchedulingPolicy.FCFS:
                continue
            subs = self.job_set.subjobs_on(proc)
            prios = [s.priority for s in subs]
            if any(p is None for p in prios):
                raise ValueError(
                    f"processor {proc!r} ({pol.value}) has subjobs without "
                    f"priorities; run a priority assignment first"
                )
            if len(set(prios)) != len(prios):
                raise ValueError(
                    f"processor {proc!r} ({pol.value}) has duplicate priorities "
                    f"{sorted(prios)}"
                )

    def utilization(self, processor: Hashable) -> float:
        return self.job_set.utilization(processor)

    def max_utilization(self) -> float:
        return self.job_set.max_utilization()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pols = {p: self.policy(p).value for p in self.processors}
        return f"System({len(self.job_set)} jobs, policies={pols})"

"""System model: jobs, subjobs, processors, priorities, arrival processes."""

from .arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    LeakyBucketArrivals,
    PeriodicArrivals,
    SporadicArrivals,
    TraceArrivals,
)
from .io import (
    SystemFormatError,
    load_system,
    save_system,
    system_from_dict,
    system_to_dict,
)
from .job import Job, JobSet, SubJob
from .priorities import (
    assign_priorities_by_key,
    assign_priorities_deadline_monotonic,
    assign_priorities_explicit,
    assign_priorities_proportional_deadline,
    assign_priorities_rate_monotonic,
)
from .system import SchedulingPolicy, System

__all__ = [
    "ArrivalProcess",
    "PeriodicArrivals",
    "BurstyArrivals",
    "TraceArrivals",
    "SporadicArrivals",
    "LeakyBucketArrivals",
    "Job",
    "SubJob",
    "JobSet",
    "SchedulingPolicy",
    "System",
    "assign_priorities_by_key",
    "assign_priorities_proportional_deadline",
    "assign_priorities_deadline_monotonic",
    "assign_priorities_rate_monotonic",
    "assign_priorities_explicit",
    "SystemFormatError",
    "load_system",
    "save_system",
    "system_from_dict",
    "system_to_dict",
]

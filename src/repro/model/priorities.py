"""Priority assignment policies (paper Section 5.1).

The paper's experiments use the *relative deadline monotonic* assignment of
Sun & Liu: every subjob receives a proportional sub-deadline

    ``D_{i,j} = tau_{i,j} / (sum_l tau_{i,l}) * D_i``        (Eq. 24)

and subjobs sharing a processor are prioritized by increasing sub-deadline
(smaller sub-deadline = higher priority = smaller ``phi``).  The analysis
itself works for *arbitrary* assignments, so alternatives (rate monotonic,
end-to-end deadline monotonic, explicit) are provided as well.

All policies assign each processor's priorities as the dense range
``1 .. n`` and break ties deterministically by ``(key, job_id, index)`` so
that SPP/SPNP analyses (which require unique priorities per processor) are
always well-defined.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Tuple, Union

from .job import JobSet, SubJob
from .system import System

__all__ = [
    "assign_priorities_proportional_deadline",
    "assign_priorities_deadline_monotonic",
    "assign_priorities_rate_monotonic",
    "assign_priorities_explicit",
    "assign_priorities_by_key",
]

JobSetLike = Union[JobSet, System]


def _job_set(obj: JobSetLike) -> JobSet:
    return obj.job_set if isinstance(obj, System) else obj


def assign_priorities_by_key(
    obj: JobSetLike, key: Callable[[SubJob], float]
) -> None:
    """Assign per-processor priorities by increasing ``key(subjob)``.

    The subjob with the smallest key gets priority 1 (highest).  Ties are
    broken by ``(job_id, index)`` for determinism.
    """
    job_set = _job_set(obj)
    for proc in job_set.processors:
        subs = job_set.subjobs_on(proc)
        subs.sort(key=lambda s: (key(s), s.job_id, s.index))
        for rank, sub in enumerate(subs, start=1):
            sub.priority = rank


def assign_priorities_proportional_deadline(obj: JobSetLike) -> None:
    """The paper's Eq. 24 relative-deadline-monotonic assignment."""
    job_set = _job_set(obj)
    sub_deadline: Dict[Tuple[str, int], float] = {}
    for job in job_set:
        for sub, d in zip(job.subjobs, job.sub_deadlines()):
            sub_deadline[sub.key] = d
    assign_priorities_by_key(job_set, lambda s: sub_deadline[s.key])


def assign_priorities_deadline_monotonic(obj: JobSetLike) -> None:
    """Prioritize by the job's end-to-end deadline (smaller = higher)."""
    job_set = _job_set(obj)
    deadline = {job.job_id: job.deadline for job in job_set}
    assign_priorities_by_key(job_set, lambda s: deadline[s.job_id])


def assign_priorities_rate_monotonic(obj: JobSetLike) -> None:
    """Prioritize by arrival rate (higher rate = higher priority).

    For periodic jobs this is classical rate-monotonic assignment; for
    aperiodic processes the long-run rate is used.  Jobs with zero rate
    (finite traces) sort last.
    """
    job_set = _job_set(obj)
    rate = {job.job_id: job.arrivals.rate for job in job_set}

    def key(sub: SubJob) -> float:
        r = rate[sub.job_id]
        return -r if r > 0 else float("inf")

    assign_priorities_by_key(job_set, key)


def assign_priorities_explicit(
    obj: JobSetLike, priorities: Mapping[Tuple[str, int], int]
) -> None:
    """Assign explicit priorities from a ``(job_id, index) -> phi`` map."""
    job_set = _job_set(obj)
    for sub in job_set.all_subjobs():
        if sub.key in priorities:
            sub.priority = int(priorities[sub.key])
    missing = [s.key for s in job_set.all_subjobs() if s.priority is None]
    if missing:
        raise ValueError(f"explicit priority map is missing subjobs: {missing}")

"""Jobs, subjobs and job sets (paper Section 3.1).

A :class:`Job` ``T_k`` is a chain of :class:`SubJob`\\ s ``T_{k,1} ...
T_{k,n_k}`` executed sequentially on (possibly different) processors under
Direct Synchronization: the completion of an instance of ``T_{k,j}``
releases the corresponding instance of ``T_{k,j+1}`` immediately.  Each job
carries an :class:`~repro.model.arrivals.ArrivalProcess` describing the
release times of its first subjob, and an end-to-end deadline ``D_k``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

from .arrivals import ArrivalProcess

__all__ = ["SubJob", "Job", "JobSet"]


@dataclass
class SubJob:
    """One stage ``T_{k,j}`` of a job chain.

    Attributes
    ----------
    job_id:
        Identifier of the owning job ``T_k``.
    index:
        Zero-based position ``j`` within the chain.
    processor:
        Identifier of the processor ``P(k, j)`` executing this subjob.
    wcet:
        Execution time ``tau_{k,j}`` of every instance.
    priority:
        Static priority ``phi_{k,j}`` on the processor -- smaller is
        higher priority (paper convention).  ``None`` until a priority
        assignment policy has run; FCFS processors ignore it.
    nonpreemptive_section:
        Length of the preemption-masked region at the *start* of each
        instance's execution (e.g. a critical section entered
        immediately, or interrupt masking).  ``0`` = fully preemptive;
        ``wcet`` = the whole subjob is non-preemptable.  On SPP
        processors this generalizes the paper's Eq. 15 blocking: a
        higher-priority subjob can be blocked for up to the longest
        masked region of any lower-priority subjob on the processor --
        SPNP is exactly the special case ``nonpreemptive_section == wcet``
        for every subjob.  A first step toward the shared-resource
        analysis the paper's conclusion calls future work.
    """

    job_id: str
    index: int
    processor: Hashable
    wcet: float
    priority: Optional[int] = None
    nonpreemptive_section: float = 0.0

    def __post_init__(self) -> None:
        if self.wcet <= 0 or not math.isfinite(self.wcet):
            raise ValueError(
                f"subjob ({self.job_id},{self.index}) needs a positive finite "
                f"wcet, got {self.wcet}"
            )
        if self.index < 0:
            raise ValueError("subjob index must be non-negative")
        if not (0.0 <= self.nonpreemptive_section <= self.wcet + 1e-12):
            raise ValueError(
                f"subjob ({self.job_id},{self.index}) needs "
                f"0 <= nonpreemptive_section <= wcet, got "
                f"{self.nonpreemptive_section}"
            )

    @property
    def key(self) -> Tuple[str, int]:
        """The ``(job_id, index)`` pair identifying this subjob."""
        return (self.job_id, self.index)


@dataclass
class Job:
    """A job ``T_k``: an arrival process, a chain of subjobs, a deadline.

    ``release_jitter`` models bounded release uncertainty (Tindell et
    al., cited in the paper's Section 2): the ``m``-th instance is
    released anywhere in ``[t_m, t_m + release_jitter]`` where ``t_m``
    comes from the arrival process.  The approximate analyses account for
    it through their early/late envelopes; the exact analysis requires
    concrete release times and rejects jittered jobs.  Response times and
    deadlines are measured from the *nominal* time ``t_m``.

    The jitter must stay below the minimum inter-arrival time of the
    process, so instances keep their release order (the per-instance
    FIFO assumption behind Theorem 2 and the hop bounds).
    """

    job_id: str
    subjobs: List[SubJob]
    arrivals: ArrivalProcess
    deadline: float
    release_jitter: float = 0.0

    def __post_init__(self) -> None:
        if not self.subjobs:
            raise ValueError(f"job {self.job_id} must have at least one subjob")
        if self.deadline <= 0 or not math.isfinite(self.deadline):
            raise ValueError(f"job {self.job_id} needs a positive finite deadline")
        if self.release_jitter < 0 or not math.isfinite(self.release_jitter):
            raise ValueError(
                f"job {self.job_id} needs a finite non-negative release jitter"
            )
        for j, sub in enumerate(self.subjobs):
            if sub.job_id != self.job_id:
                raise ValueError(
                    f"subjob {sub.key} does not belong to job {self.job_id}"
                )
            if sub.index != j:
                raise ValueError(
                    f"subjob chain of {self.job_id} must be indexed 0..n-1 in "
                    f"order, found index {sub.index} at position {j}"
                )

    @classmethod
    def build(
        cls,
        job_id: str,
        route: Sequence[Tuple[Hashable, float]],
        arrivals: ArrivalProcess,
        deadline: float,
        release_jitter: float = 0.0,
    ) -> "Job":
        """Construct a job from ``[(processor, wcet), ...]`` route pairs."""
        subjobs = [
            SubJob(job_id=job_id, index=j, processor=proc, wcet=float(wcet))
            for j, (proc, wcet) in enumerate(route)
        ]
        return cls(
            job_id=job_id,
            subjobs=subjobs,
            arrivals=arrivals,
            deadline=deadline,
            release_jitter=release_jitter,
        )

    @property
    def n_subjobs(self) -> int:
        return len(self.subjobs)

    @property
    def total_wcet(self) -> float:
        """Sum of subjob execution times (best-case end-to-end time)."""
        return sum(s.wcet for s in self.subjobs)

    @property
    def processors(self) -> Tuple[Hashable, ...]:
        return tuple(s.processor for s in self.subjobs)

    def revisits_processor(self) -> bool:
        """True if the chain visits some processor more than once (the
        paper's "physical loop"; needs the fixed-point extension)."""
        procs = self.processors
        return len(set(procs)) < len(procs)

    def sub_deadlines(self) -> List[float]:
        """Proportional sub-deadlines ``D_{i,j}`` of Eq. 24."""
        total = self.total_wcet
        return [s.wcet / total * self.deadline for s in self.subjobs]


class JobSet:
    """An immutable-by-discipline collection of jobs with lookup helpers."""

    def __init__(self, jobs: Sequence[Job]) -> None:
        self._jobs: List[Job] = list(jobs)
        seen = set()
        for job in self._jobs:
            if job.job_id in seen:
                raise ValueError(f"duplicate job id {job.job_id!r}")
            seen.add(job.job_id)
        self._by_id: Dict[str, Job] = {j.job_id: j for j in self._jobs}

    # -- container protocol -------------------------------------------------

    def __iter__(self) -> Iterator[Job]:
        return iter(self._jobs)

    def __len__(self) -> int:
        return len(self._jobs)

    def __getitem__(self, job_id: str) -> Job:
        return self._by_id[job_id]

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._by_id

    @property
    def jobs(self) -> Tuple[Job, ...]:
        return tuple(self._jobs)

    # -- structure queries --------------------------------------------------

    @property
    def processors(self) -> Tuple[Hashable, ...]:
        """All processors referenced by any subjob, in first-seen order."""
        seen: Dict[Hashable, None] = {}
        for job in self._jobs:
            for sub in job.subjobs:
                seen.setdefault(sub.processor, None)
        return tuple(seen)

    def subjobs_on(self, processor: Hashable) -> List[SubJob]:
        """All subjobs mapped to the given processor."""
        return [
            sub
            for job in self._jobs
            for sub in job.subjobs
            if sub.processor == processor
        ]

    def all_subjobs(self) -> List[SubJob]:
        return [sub for job in self._jobs for sub in job.subjobs]

    def subjob(self, job_id: str, index: int) -> SubJob:
        return self._by_id[job_id].subjobs[index]

    def utilization(self, processor: Hashable) -> float:
        """Long-run utilization ``sum tau * rate`` of the processor.

        Finite traces contribute zero rate (transient load only).
        """
        total = 0.0
        for job in self._jobs:
            rate = job.arrivals.rate
            for sub in job.subjobs:
                if sub.processor == processor:
                    total += sub.wcet * rate
        return total

    def max_utilization(self) -> float:
        """The highest long-run utilization over all processors."""
        return max((self.utilization(p) for p in self.processors), default=0.0)

    def priorities_assigned(self) -> bool:
        return all(s.priority is not None for s in self.all_subjobs())

    def validate_priorities(self) -> None:
        """Check that every subjob has a priority (after assignment)."""
        missing = [s.key for s in self.all_subjobs() if s.priority is None]
        if missing:
            raise ValueError(
                f"subjobs without priority (run a priority assignment): {missing}"
            )

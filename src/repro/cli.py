"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``analyze``
    Run a response-time analysis on a JSON system description::

        python -m repro analyze system.json --method SPP/Exact

``simulate``
    Execute the system in the discrete-event simulator::

        python -m repro simulate system.json --horizon 200

``validate``
    Analyze *and* simulate, reporting bound-vs-observed per job::

        python -m repro validate system.json --method SPNP/App

``figures``
    Regenerate the paper's Figure 3 / Figure 4 admission-probability
    panels at a chosen scale::

        python -m repro figures --figure 3 --sets 100

``batch``
    Bulk-analyze JSON-lines work items through the batch engine
    (JSON-lines out, one result record per input item)::

        python -m repro batch items.jsonl --workers 4 --timeout 30

``shard``
    Split a JSONL campaign into deterministic shards and merge the shard
    artifacts back into one campaign result (byte-identical to an
    unsharded run)::

        python -m repro shard plan items.jsonl --shards 3 --out plan.json
        python -m repro shard merge --plan plan.json --records s*.jsonl --out all.jsonl

``audit``
    Randomized soundness audit: cross-validate every analysis against
    the simulator on fuzzed, fault-injected systems; shrink and save any
    counterexample::

        python -m repro audit --systems 200 --seed 42

``trace``
    Profile one analysis run under full observability: detail tracing,
    metrics and a persistent curve cache, written as a Chrome/Perfetto
    trace plus a Prometheus text dump (see ``docs/observability.md``)::

        python -m repro trace system.json --trace-out trace.json

``obs``
    Observability utilities: ``obs watch STATUS_FILE`` renders the live
    status file a campaign publishes via ``--status``; ``obs report``
    combines run artifacts into one self-contained HTML report::

        python -m repro obs watch status.json --once
        python -m repro obs report --out report.html --status status.json

``methods``
    List the available analysis methods.

``analyze`` and ``validate`` accept ``--json`` to emit the stable
machine-readable result schema documented in ``docs/api.md`` instead of
the human-readable summary.  ``analyze``, ``batch`` and ``audit`` accept
``--trace-out FILE`` / ``--metrics-out FILE`` to capture a Chrome trace
and/or Prometheus metrics of the run as a side effect.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .analysis import AnalysisOptions, METHODS, make_analyzer
from .model.io import load_system
from .sim import simulate as run_simulation

__all__ = ["main", "build_parser"]


def _add_compact_args(p: argparse.ArgumentParser) -> None:
    """Attach the sound-compaction / perf knobs (see docs/performance.md)."""
    p.add_argument(
        "--compact-budget",
        type=int,
        default=None,
        dest="compact_budget",
        metavar="N",
        help="cap interference curves at N breakpoints (sound: upper "
        "bounds round up, lower bounds round down); default: no compaction",
    )
    p.add_argument(
        "--compact-max-error",
        type=float,
        default=None,
        dest="compact_max_error",
        metavar="EPS",
        help="compact curves to a certified max vertical error of EPS "
        "work units instead of a breakpoint budget",
    )
    p.add_argument(
        "--no-warm-start",
        action="store_true",
        dest="no_warm_start",
        help="disable horizon warm-starting in the fixpoint analysis "
        "(only relevant with --compact-budget/--compact-max-error)",
    )
    p.add_argument(
        "--backend",
        choices=("auto", "numpy", "python"),
        default="auto",
        dest="backend",
        help="curve kernel backend (bit-identical results either way); "
        "'auto' keeps the process default (numpy when installed, or "
        "the REPRO_CURVE_BACKEND environment variable)",
    )
    p.add_argument(
        "--convergence",
        action="store_true",
        dest="convergence",
        help="record per-sweep fixpoint convergence telemetry and attach "
        "it as a 'convergence' block to the result (telemetry only; "
        "bounds are unchanged)",
    )
    p.add_argument(
        "--cache-size",
        type=int,
        default=None,
        dest="cache_size",
        metavar="N",
        help="in-process curve-cache capacity in entries (default: "
        "4096); performance-only, results are unchanged",
    )


def _add_cache_args(p: argparse.ArgumentParser) -> None:
    """Attach the persistent cross-run cache knob (see docs/performance.md)."""
    p.add_argument(
        "--cache-dir",
        default=None,
        dest="cache_dir",
        metavar="DIR",
        help="persistent cross-run cache root: memoized curve kernels "
        "and (for batch) whole item records are stored under DIR and "
        "reused by later runs; entries are self-verified, so a corrupt "
        "cache only ever costs recomputation",
    )


def _options_from_args(args) -> Optional[AnalysisOptions]:
    """Build AnalysisOptions from parsed compact args; None = defaults.

    Returning ``None`` when no perf knob was given keeps the default CLI
    path byte-identical to the pre-options pipeline.
    """
    budget = getattr(args, "compact_budget", None)
    max_error = getattr(args, "compact_max_error", None)
    no_warm = getattr(args, "no_warm_start", False)
    backend = getattr(args, "backend", "auto")
    convergence = getattr(args, "convergence", False)
    cache_size = getattr(args, "cache_size", None)
    if backend == "auto":
        backend = None
    if (
        budget is None
        and max_error is None
        and not no_warm
        and backend is None
        and not convergence
        and cache_size is None
    ):
        return None
    if budget is not None and max_error is not None:
        raise SystemExit(
            "error: --compact-budget and --compact-max-error are exclusive"
        )
    return AnalysisOptions(
        compact_budget=budget,
        compact_mode="error" if max_error is not None else "budget",
        compact_max_error=max_error,
        warm_start=not no_warm,
        backend=backend,
        convergence=convergence,
        cache_size=cache_size,
    )


def _cache_scope(args):
    """Curve-cache context for single-run commands (analyze / audit).

    ``--cache-dir`` activates an in-process curve cache spilling to the
    persistent store; ``--cache-size`` alone activates a purely
    in-memory one.  Neither flag -> a no-op context, keeping the default
    path byte-identical to the uncached pipeline.
    """
    from contextlib import nullcontext

    cache_dir = getattr(args, "cache_dir", None)
    cache_size = getattr(args, "cache_size", None)
    if cache_dir is None and cache_size is None:
        return nullcontext()
    from .cache import CurveSpill, DiskCacheStore
    from .curves import memo

    spill = (
        CurveSpill(DiskCacheStore(cache_dir)) if cache_dir is not None else None
    )
    size = cache_size if cache_size is not None else memo.DEFAULT_CACHE_SIZE
    return memo.curve_cache(cache=memo.CurveCache(size, spill=spill))


def _add_obs_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--trace-out",
        default=None,
        dest="trace_out",
        metavar="FILE",
        help="write a Chrome/Perfetto trace of this run to FILE",
    )
    p.add_argument(
        "--metrics-out",
        default=None,
        dest="metrics_out",
        metavar="FILE",
        help="write a Prometheus text metrics dump of this run to FILE",
    )
    _add_profile_args(p)


def _add_profile_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--profile-out",
        default=None,
        dest="profile_out",
        metavar="FILE",
        help="cProfile the run and write collapsed (flamegraph-ready) "
        "stacks to FILE",
    )
    p.add_argument(
        "--profile-mem-out",
        default=None,
        dest="profile_mem_out",
        metavar="FILE",
        help="sample allocations with tracemalloc and write collapsed "
        "stacks (weights in bytes) to FILE",
    )


def _add_status_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--status",
        default=None,
        dest="status",
        metavar="FILE",
        help="publish live campaign status to FILE (atomic JSON; watch it "
        "with 'python -m repro obs watch FILE')",
    )
    p.add_argument(
        "--status-interval",
        type=float,
        default=1.0,
        dest="status_interval",
        metavar="S",
        help="minimum seconds between status-file writes (default: 1.0)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Response-time analysis for distributed real-time systems with "
            "bursty job arrivals (Li, Bettati & Zhao, ICPP 1998)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_an = sub.add_parser("analyze", help="analyze a JSON system description")
    p_an.add_argument("system", help="path to the system JSON file")
    p_an.add_argument(
        "--method", default="SPP/Exact", choices=sorted(METHODS), metavar="METHOD"
    )
    p_an.add_argument(
        "--json", action="store_true", help="emit the machine-readable result schema"
    )
    _add_compact_args(p_an)
    _add_cache_args(p_an)
    _add_obs_args(p_an)

    p_sim = sub.add_parser("simulate", help="simulate a JSON system description")
    p_sim.add_argument("system")
    p_sim.add_argument("--horizon", type=float, default=100.0)
    p_sim.add_argument("--report-window", type=float, default=None)

    p_val = sub.add_parser("validate", help="analyze and simulate, compare")
    p_val.add_argument("system")
    p_val.add_argument(
        "--method", default="SPP/Exact", choices=sorted(METHODS), metavar="METHOD"
    )
    p_val.add_argument(
        "--json", action="store_true", help="emit the machine-readable result schema"
    )
    _add_compact_args(p_val)

    p_fig = sub.add_parser("figures", help="regenerate Figure 3 / Figure 4")
    p_fig.add_argument("--figure", choices=["3", "4", "both"], default="both")
    p_fig.add_argument("--sets", type=int, default=30)
    p_fig.add_argument("--workers", type=int, default=None)

    p_bat = sub.add_parser(
        "batch", help="bulk-analyze JSON-lines work items (JSON-lines out)"
    )
    p_bat.add_argument(
        "input",
        nargs="?",
        default="-",
        help="JSONL file of work items ('-' = stdin); each line is either a "
        "system description or {'id':..., 'method':..., 'system': {...}}",
    )
    p_bat.add_argument(
        "--method",
        default="SPP/Exact",
        choices=sorted(METHODS),
        metavar="METHOD",
        help="default method for items that do not name one",
    )
    p_bat.add_argument("--workers", type=int, default=None)
    p_bat.add_argument("--chunksize", type=int, default=None)
    p_bat.add_argument(
        "--timeout", type=float, default=None, help="per-item timeout in seconds"
    )
    p_bat.add_argument(
        "--no-cache", action="store_true", help="disable curve-cache memoization"
    )
    p_bat.add_argument(
        "--audit",
        action="store_true",
        help="cross-validate each analyzed item against the simulator; "
        "violation records are added to the output lines",
    )
    p_bat.add_argument(
        "--journal",
        default=None,
        metavar="FILE",
        help="write-ahead journal: append each item's outcome to FILE "
        "(crash-safe JSONL) as soon as it is known",
    )
    p_bat.add_argument(
        "--resume",
        action="store_true",
        help="with --journal: resume an interrupted campaign, skipping "
        "items already journaled",
    )
    p_bat.add_argument(
        "--retry",
        type=int,
        default=None,
        metavar="N",
        help="retry transient failures (timeouts, worker crashes) up to N "
        "attempts per item; poison items are quarantined with a "
        "reproduction payload",
    )
    p_bat.add_argument(
        "--shard-index",
        type=int,
        default=None,
        dest="shard_index",
        metavar="I",
        help="analyze only shard I of the campaign (0-based; requires "
        "--shard-count or --shard-manifest)",
    )
    p_bat.add_argument(
        "--shard-count",
        type=int,
        default=None,
        dest="shard_count",
        metavar="N",
        help="total number of shards (items are assigned round-robin by "
        "submission index)",
    )
    p_bat.add_argument(
        "--shard-manifest",
        default=None,
        dest="shard_manifest",
        metavar="FILE",
        help="shard plan written by 'repro shard plan'; validated against "
        "this campaign's item digests before running",
    )
    _add_compact_args(p_bat)
    _add_cache_args(p_bat)
    _add_obs_args(p_bat)
    _add_status_args(p_bat)

    p_ch = sub.add_parser(
        "chaos",
        help="fault-injection harness: kill, tamper with and resume a "
        "journaled batch campaign, then verify it matches an "
        "uninterrupted run",
    )
    p_ch.add_argument("--items", type=int, default=50)
    p_ch.add_argument("--seed", type=int, default=7)
    p_ch.add_argument(
        "--method", default="SPP/Exact", choices=sorted(METHODS), metavar="METHOD"
    )
    p_ch.add_argument("--workers", type=int, default=2)
    p_ch.add_argument(
        "--journal",
        default="chaos.wal",
        metavar="FILE",
        help="journal file the campaign writes/resumes (default: chaos.wal)",
    )
    p_ch.add_argument("--kill-rate", type=float, default=0.02,
                      help="per-item probability of SIGKILLing the worker")
    p_ch.add_argument("--timeout-rate", type=float, default=0.04,
                      help="per-item probability of an injected timeout")
    p_ch.add_argument("--error-rate", type=float, default=0.04,
                      help="per-item probability of an injected transient error")
    p_ch.add_argument(
        "--kill-points",
        default="7,19",
        metavar="N,N,...",
        help="SIGKILL the campaign after these journal-append counts, one "
        "run per point (each run resumes the previous journal)",
    )
    p_ch.add_argument(
        "--tamper",
        choices=["none", "truncate", "corrupt"],
        default="truncate",
        help="damage the journal tail after the first kill (default: truncate)",
    )
    p_ch.add_argument("--max-attempts", type=int, default=4)
    p_ch.add_argument(
        "--json", default=None, metavar="FILE",
        help="write the chaos report JSON to FILE",
    )
    p_ch.add_argument(
        "--cache-dir",
        default=None,
        dest="cache_dir",
        metavar="DIR",
        help="run the injected campaigns with a persistent cache under "
        "DIR and scramble part of it after the first kill; equivalence "
        "then proves cache corruption never propagates",
    )
    _add_status_args(p_ch)
    p_ch.add_argument("--child", action="store_true", help=argparse.SUPPRESS)
    p_ch.add_argument(
        "--kill-after", type=int, default=None, help=argparse.SUPPRESS
    )
    p_ch.add_argument(
        "--no-inject", action="store_true", help=argparse.SUPPRESS
    )

    p_aud = sub.add_parser(
        "audit", help="randomized soundness audit (analysis vs simulation)"
    )
    p_aud.add_argument("--systems", type=int, default=50, help="systems to audit")
    p_aud.add_argument("--seed", type=int, default=0)
    p_aud.add_argument(
        "--method",
        action="append",
        dest="methods",
        choices=sorted(METHODS),
        metavar="METHOD",
        help="repeatable; default: every registered method",
    )
    p_aud.add_argument(
        "--fault",
        action="append",
        dest="faults",
        choices=["none", "jitter", "cluster", "perturb"],
        metavar="FAULT",
        help="repeatable fault cycle; default: none, jitter, cluster, perturb",
    )
    p_aud.add_argument(
        "--corrupt",
        default=None,
        choices=sorted(METHODS),
        metavar="METHOD",
        help="self-test: corrupt this method's bounds and require the "
        "audit to flag every run",
    )
    p_aud.add_argument(
        "--corrupt-factor", type=float, default=0.5, dest="corrupt_factor"
    )
    p_aud.add_argument(
        "--sim-cap", type=float, default=300.0, dest="sim_cap",
        help="simulation window cap per system",
    )
    p_aud.add_argument("--max-jobs", type=int, default=4, dest="max_jobs")
    p_aud.add_argument(
        "--no-shrink", action="store_true",
        help="skip counterexample shrinking on violations",
    )
    p_aud.add_argument(
        "--artifact-dir", default=None, dest="artifact_dir",
        help="directory for shrunk counterexample JSON artifacts",
    )
    p_aud.add_argument(
        "--json", action="store_true", help="emit the full report as JSON"
    )
    _add_compact_args(p_aud)
    _add_cache_args(p_aud)
    _add_obs_args(p_aud)
    _add_status_args(p_aud)

    p_sh = sub.add_parser(
        "shard",
        help="plan and merge sharded batch campaigns (see docs/performance.md)",
    )
    sh_sub = p_sh.add_subparsers(dest="shard_command", required=True)

    p_sp = sh_sub.add_parser(
        "plan",
        help="emit a deterministic shard manifest for a JSONL campaign",
    )
    p_sp.add_argument(
        "input",
        nargs="?",
        default="-",
        help="JSONL file of work items ('-' = stdin), exactly as passed "
        "to 'repro batch'",
    )
    p_sp.add_argument(
        "--shards",
        type=int,
        required=True,
        metavar="N",
        help="number of shards to split the campaign into",
    )
    p_sp.add_argument(
        "--out", required=True, metavar="FILE", help="manifest output path"
    )
    p_sp.add_argument(
        "--method",
        default="SPP/Exact",
        choices=sorted(METHODS),
        metavar="METHOD",
        help="default method for items that do not name one (must match "
        "the batch invocation)",
    )
    p_sp.add_argument(
        "--audit",
        action="store_true",
        help="plan for an audited campaign (must match the batch invocation)",
    )
    _add_compact_args(p_sp)

    p_sm = sh_sub.add_parser(
        "merge",
        help="combine shard outputs into one unsharded campaign result",
    )
    p_sm.add_argument(
        "--plan", required=True, metavar="FILE",
        help="shard manifest written by 'repro shard plan'",
    )
    p_sm.add_argument(
        "--records", nargs="+", default=None, metavar="FILE",
        help="per-shard JSONL outputs; merged verbatim in submission order",
    )
    p_sm.add_argument(
        "--out", default=None, metavar="FILE",
        help="merged JSONL output ('-' or omitted = stdout)",
    )
    p_sm.add_argument(
        "--journals", nargs="+", default=None, metavar="FILE",
        help="per-shard write-ahead journals; merged into --journal-out",
    )
    p_sm.add_argument(
        "--journal-out", default=None, dest="journal_out", metavar="FILE",
        help="merged journal path (resumable by the unsharded campaign)",
    )
    p_sm.add_argument(
        "--status", nargs="+", default=None, dest="status_files",
        metavar="FILE",
        help="per-shard status files; counts sum into --status-out",
    )
    p_sm.add_argument(
        "--status-out", default=None, dest="status_out", metavar="FILE",
        help="merged status document path",
    )
    p_sm.add_argument(
        "--metrics-out", default=None, dest="metrics_out", metavar="FILE",
        help="Prometheus text dump of the merged status metrics snapshots",
    )

    p_tr = sub.add_parser(
        "trace",
        help="profile one analysis run (Chrome trace + Prometheus metrics)",
    )
    p_tr.add_argument("system", help="path to the system JSON file")
    p_tr.add_argument(
        "--method", default="SPP/Exact", choices=sorted(METHODS), metavar="METHOD"
    )
    p_tr.add_argument(
        "--trace-out",
        default="trace.json",
        dest="trace_out",
        metavar="FILE",
        help="Chrome/Perfetto trace output (default: trace.json)",
    )
    p_tr.add_argument(
        "--metrics-out",
        default="metrics.prom",
        dest="metrics_out",
        metavar="FILE",
        help="Prometheus text metrics output (default: metrics.prom)",
    )
    p_tr.add_argument(
        "--no-detail",
        action="store_true",
        help="omit per-curve-op spans (coarse trace only)",
    )
    p_tr.add_argument(
        "--embed",
        action="store_true",
        help="print the result JSON with the observability block embedded",
    )
    _add_compact_args(p_tr)
    _add_profile_args(p_tr)

    p_obs = sub.add_parser(
        "obs", help="observability utilities (live status watcher, HTML report)"
    )
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)

    p_ow = obs_sub.add_parser(
        "watch", help="render a live campaign status file in the terminal"
    )
    p_ow.add_argument("status_file", help="status file written via --status")
    p_ow.add_argument(
        "--interval", type=float, default=2.0, help="refresh period in seconds"
    )
    p_ow.add_argument(
        "--once",
        action="store_true",
        help="print one frame and exit (exit 1 if the file is unreadable)",
    )

    p_or = obs_sub.add_parser(
        "report", help="build a self-contained HTML report from run artifacts"
    )
    p_or.add_argument(
        "--out", required=True, metavar="FILE", help="HTML output path"
    )
    p_or.add_argument(
        "--status", default=None, metavar="FILE", help="campaign status file"
    )
    p_or.add_argument(
        "--trace", default=None, metavar="FILE", help="Chrome trace JSON"
    )
    p_or.add_argument(
        "--metrics", default=None, metavar="FILE", help="Prometheus text dump"
    )
    p_or.add_argument(
        "--result",
        default=None,
        metavar="FILE",
        help="analysis result JSON (for the convergence chart)",
    )
    p_or.add_argument(
        "--profile", default=None, metavar="FILE", help="collapsed-stack profile"
    )
    p_or.add_argument("--title", default="repro run report")

    p_rep = sub.add_parser("report", help="markdown analysis report")
    p_rep.add_argument("system")
    p_rep.add_argument(
        "--method",
        action="append",
        dest="methods",
        choices=sorted(METHODS),
        metavar="METHOD",
        help="repeatable; default: SPP/Exact and SPNP/App",
    )
    p_rep.add_argument("--no-simulate", action="store_true")

    sub.add_parser("methods", help="list analysis methods")
    return parser


def _cmd_analyze(args) -> int:
    from .obs import observe

    system = load_system(args.system)
    options = _options_from_args(args)
    with observe(
        trace_out=args.trace_out,
        metrics_out=args.metrics_out,
        profile_out=args.profile_out,
        profile_mem_out=args.profile_mem_out,
    ):
        with _cache_scope(args):
            result = make_analyzer(args.method, options=options).analyze(system)
    print(result.to_json(indent=2) if args.json else result.summary())
    return 0 if result.schedulable else 1


def _cmd_trace(args) -> int:
    from .curves import memo
    from .obs import observe

    system = load_system(args.system)
    with observe(
        trace_out=args.trace_out,
        metrics_out=args.metrics_out,
        detail=not args.no_detail,
        force_trace=True,
        force_metrics=True,
        profile_out=args.profile_out,
        profile_mem_out=args.profile_mem_out,
    ) as session:
        with memo.curve_cache():
            result = make_analyzer(
                args.method, options=_options_from_args(args)
            ).analyze(system)
        if args.embed:
            result.observability = session.embed_block()
        n_spans = len(session.collector.spans)
    if args.embed:
        print(result.to_json(indent=2))
    else:
        print(result.summary())
    print(
        f"trace: {n_spans} spans -> {args.trace_out}; "
        f"metrics -> {args.metrics_out}",
        file=sys.stderr,
    )
    return 0 if result.schedulable else 1


def _cmd_simulate(args) -> int:
    system = load_system(args.system)
    res = run_simulation(
        system, horizon=args.horizon, report_window=args.report_window
    )
    print(res.summary())
    return 0 if res.all_deadlines_met else 1


def _cmd_validate(args) -> int:
    system = load_system(args.system)
    options = _options_from_args(args)
    result = make_analyzer(args.method, options=options).analyze(system)
    if not args.json:
        print(result.summary())
    if not result.drained:
        if args.json:
            print(json.dumps({"analysis": result.to_dict(), "simulation": None}))
        else:
            print("analysis did not drain; skipping simulation comparison")
        return 1
    rep = result.horizon / 2
    sim = run_simulation(system, horizon=result.horizon, report_window=rep)
    ok = True
    comparison = {}
    for job_id, er in sorted(result.jobs.items()):
        observed = sim.jobs[job_id].max_response(rep)
        holds = observed <= er.wcrt + 1e-9
        ok = ok and holds
        comparison[job_id] = {
            "bound": er.wcrt,
            "observed": observed,
            "bound_holds": holds,
        }
        if not args.json:
            print(
                f"  {job_id}: bound {er.wcrt:.6g} vs simulated {observed:.6g} "
                f"[{'ok' if holds else 'VIOLATION'}]"
            )
    if args.json:
        payload = {
            "analysis": result.to_dict(),
            "simulation": {"jobs": comparison, "all_bounds_hold": ok},
        }
        print(json.dumps(payload, indent=2, allow_nan=False))
    return 0 if ok else 2


def _cmd_figures(args) -> int:
    from .experiments import (
        Figure3Config,
        Figure4Config,
        format_figure,
        run_figure3,
        run_figure4,
    )

    if args.figure in ("3", "both"):
        cfg = Figure3Config(n_sets=args.sets, n_workers=args.workers)
        print(format_figure(run_figure3(cfg), "Figure 3 (periodic arrivals)"))
    if args.figure in ("4", "both"):
        cfg4 = Figure4Config(n_sets=args.sets, n_workers=args.workers)
        print(format_figure(run_figure4(cfg4), "Figure 4 (bursty arrivals)"))
    return 0


class _ItemParseError(Exception):
    """A batch work-item line failed to parse (message is user-ready)."""


def _parse_batch_items(path: str, default_method: str) -> List["BatchItem"]:
    """Parse JSONL work items as ``repro batch`` does ('-' = stdin).

    Shared with ``repro shard plan`` so both commands see the identical
    item list (ids, methods, order).  Raises :class:`_ItemParseError`
    with a printable message on bad input.
    """
    from .batch import BatchItem
    from .model.io import system_from_dict

    if path == "-":
        lines = sys.stdin.read().splitlines()
    else:
        with open(path) as fh:
            lines = fh.read().splitlines()

    items: List[BatchItem] = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise _ItemParseError(
                f"error: {path} line {lineno}: invalid JSON: {exc}"
            )
        wrapped = isinstance(obj, dict) and "system" in obj
        system_dict = obj["system"] if wrapped else obj
        try:
            system = system_from_dict(system_dict)
        except (KeyError, TypeError, ValueError) as exc:
            raise _ItemParseError(
                f"error: {path} line {lineno}: bad system description: {exc}"
            )
        items.append(
            BatchItem(
                system=system,
                method=(obj.get("method") or default_method)
                if wrapped
                else default_method,
                item_id=str(obj["id"]) if wrapped and "id" in obj else str(lineno),
            )
        )
    return items


def _item_digests(items, options) -> List[str]:
    """Content digest per item, matching the batch engine's journal keys."""
    from .batch.journal import item_digest

    return [
        item_digest(
            it.system,
            it.method,
            it.horizon,
            it.options if it.options is not None else options,
        )
        for it in items
    ]


def _shard_filter(args, items, options) -> Optional[List["BatchItem"]]:
    """Restrict ``items`` to the requested shard; ``None`` on CLI error."""
    from .cache import ShardError, check_plan_matches, load_plan, shard_indices

    n_shards = args.shard_count
    if args.shard_manifest:
        try:
            plan = load_plan(args.shard_manifest)
            if n_shards is not None and n_shards != plan["n_shards"]:
                raise ShardError(
                    f"--shard-count {n_shards} disagrees with the manifest's "
                    f"{plan['n_shards']} shards"
                )
            check_plan_matches(
                plan, _item_digests(items, options), args.shard_manifest
            )
            keep = set(shard_indices(plan, args.shard_index))
        except ShardError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return None
    else:
        if n_shards is None:
            print(
                "error: --shard-index requires --shard-count or "
                "--shard-manifest",
                file=sys.stderr,
            )
            return None
        if not 0 <= args.shard_index < n_shards:
            print(
                f"error: --shard-index {args.shard_index} out of range for "
                f"{n_shards} shards",
                file=sys.stderr,
            )
            return None
        keep = {i for i in range(len(items)) if i % n_shards == args.shard_index}
    return [it for i, it in enumerate(items) if i in keep]


def _cmd_batch(args) -> int:
    from .batch import BatchEngine, RetryPolicy

    try:
        items = _parse_batch_items(args.input, args.method)
    except _ItemParseError as exc:
        print(exc, file=sys.stderr)
        return 2

    from .obs import observe

    if args.resume and not args.journal:
        print("error: --resume requires --journal", file=sys.stderr)
        return 2
    options = _options_from_args(args)
    if args.shard_index is not None:
        sharded = _shard_filter(args, items, options)
        if sharded is None:
            return 2
        items = sharded
    elif args.shard_count is not None or args.shard_manifest:
        print("error: --shard-count/--shard-manifest require --shard-index",
              file=sys.stderr)
        return 2
    engine = BatchEngine(
        n_workers=args.workers,
        chunksize=args.chunksize,
        timeout=args.timeout,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        audit=args.audit,
        options=options,
        retry=RetryPolicy(max_attempts=args.retry) if args.retry else None,
        journal=args.journal,
        resume=args.resume,
        status=args.status,
        status_interval=args.status_interval,
    )
    with observe(
        trace_out=args.trace_out,
        metrics_out=args.metrics_out,
        profile_out=args.profile_out,
        profile_mem_out=args.profile_mem_out,
    ):
        report = engine.run(items)
    for record in report:
        print(json.dumps(record.to_dict(), allow_nan=False))
    print(report.summary(), file=sys.stderr)
    if args.audit and report.n_violations:
        print(
            f"audit: {report.n_violations} soundness violation(s) found",
            file=sys.stderr,
        )
        return 2
    return 0 if report.n_failed == 0 else 1


def _cmd_report(args) -> int:
    from .experiments import analysis_report

    system = load_system(args.system)
    print(
        analysis_report(
            system,
            methods=args.methods or ["SPP/Exact", "SPNP/App"],
            simulate_check=not args.no_simulate,
        )
    )
    return 0


def _cmd_audit(args) -> int:
    from .audit import FAULTS, AuditConfig, run_audit
    from .obs import observe

    config = AuditConfig(
        n_systems=args.systems,
        seed=args.seed,
        methods=tuple(args.methods) if args.methods else tuple(METHODS),
        faults=tuple(args.faults) if args.faults else FAULTS,
        corrupt=args.corrupt,
        corrupt_factor=args.corrupt_factor,
        sim_cap=args.sim_cap,
        max_jobs=args.max_jobs,
        shrink=not args.no_shrink,
        artifact_dir=args.artifact_dir,
        options=_options_from_args(args),
    )
    status = None
    if args.status:
        from .obs import StatusWriter

        status = StatusWriter(
            args.status, campaign="audit", interval=args.status_interval
        )

    def progress(audit) -> None:
        if status is not None:
            status.item_done("ok" if not audit.outcome.violations else "error")
        if not args.json and audit.outcome.violations:
            print(
                f"system {audit.index} (seed {audit.seed}, "
                f"fault {audit.fault}): "
                f"{len(audit.outcome.violations)} violation(s)",
                file=sys.stderr,
            )

    with observe(
        trace_out=args.trace_out,
        metrics_out=args.metrics_out,
        profile_out=args.profile_out,
        profile_mem_out=args.profile_mem_out,
    ):
        if status is not None:
            status.begin(total=config.n_systems)
        try:
            with _cache_scope(args):
                report = run_audit(config, progress=progress)
        finally:
            if status is not None:
                status.finish()
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, allow_nan=False))
    else:
        print(report.summary())
    return 0 if report.ok else 2


def _cmd_shard(args) -> int:
    from .cache import ShardError

    if args.shard_command == "plan":
        return _cmd_shard_plan(args)
    try:
        return _cmd_shard_merge(args)
    except ShardError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_shard_plan(args) -> int:
    from .batch.journal import campaign_fingerprint
    from .cache import ShardError, build_plan
    from .curves import backend as _backend
    from .ioutil import write_json_atomic

    try:
        items = _parse_batch_items(args.input, args.method)
    except _ItemParseError as exc:
        print(exc, file=sys.stderr)
        return 2
    options = _options_from_args(args)
    digests = _item_digests(items, options)
    backend = (
        options.backend
        if options is not None and options.backend is not None
        else _backend.active_backend_name()
    )
    fingerprint = campaign_fingerprint(
        digests, audit=args.audit, backend=backend
    )
    try:
        plan = build_plan(
            [it.item_id for it in items], digests, args.shards, fingerprint
        )
    except ShardError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    write_json_atomic(args.out, plan)
    per_shard = [
        sum(1 for e in plan["items"] if e["shard"] == s)
        for s in range(args.shards)
    ]
    print(
        f"shard plan: {len(items)} items -> {args.shards} shards "
        f"({'/'.join(str(n) for n in per_shard)}) -> {args.out}",
        file=sys.stderr,
    )
    return 0


def _cmd_shard_merge(args) -> int:
    from .cache import load_plan, merge_journals, merge_records, merge_status

    plan = load_plan(args.plan)
    did_anything = False
    if args.records:
        lines = merge_records(plan, args.records)
        text = "".join(line + "\n" for line in lines)
        if args.out and args.out != "-":
            from .ioutil import write_text_atomic

            write_text_atomic(args.out, text)
            print(f"records: {len(lines)} -> {args.out}", file=sys.stderr)
        else:
            sys.stdout.write(text)
        did_anything = True
    if args.journals:
        if not args.journal_out:
            print("error: --journals requires --journal-out", file=sys.stderr)
            return 2
        n = merge_journals(plan, args.journals, args.journal_out)
        print(f"journal: {n} entries -> {args.journal_out}", file=sys.stderr)
        did_anything = True
    if args.status_files:
        merged = merge_status(args.status_files, out_path=args.status_out)
        if args.status_out:
            print(f"status: {len(args.status_files)} shards -> "
                  f"{args.status_out}", file=sys.stderr)
        if args.metrics_out:
            from .obs.export import write_prometheus

            if "metrics" not in merged:
                print(
                    "error: --metrics-out requires status files with "
                    "embedded metrics (run shards with --metrics-out)",
                    file=sys.stderr,
                )
                return 2
            write_prometheus(args.metrics_out, merged["metrics"])
            print(f"metrics -> {args.metrics_out}", file=sys.stderr)
        did_anything = True
    elif args.metrics_out:
        print("error: --metrics-out requires --status", file=sys.stderr)
        return 2
    if not did_anything:
        print(
            "error: nothing to merge (pass --records, --journals and/or "
            "--status)",
            file=sys.stderr,
        )
        return 2
    return 0


def _cmd_chaos(args) -> int:
    from .chaos import harness

    if args.child:
        return harness.main_child(args)
    args.kill_points = [
        int(x) for x in str(args.kill_points).split(",") if x.strip()
    ]
    code, _report = harness.main_parent(args)
    return code


def _cmd_obs(args) -> int:
    if args.obs_command == "watch":
        from .obs.watch import watch

        return watch(args.status_file, interval=args.interval, once=args.once)
    from .obs.report import write_report

    write_report(
        args.out,
        status=args.status,
        trace=args.trace,
        metrics=args.metrics,
        result=args.result,
        profile=args.profile,
        title=args.title,
    )
    print(f"report -> {args.out}", file=sys.stderr)
    return 0


def _cmd_methods(_args) -> int:
    for name in sorted(METHODS):
        print(f"  {name:14s} {METHODS[name].__doc__.strip().splitlines()[0]}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "analyze": _cmd_analyze,
        "simulate": _cmd_simulate,
        "validate": _cmd_validate,
        "figures": _cmd_figures,
        "batch": _cmd_batch,
        "shard": _cmd_shard,
        "chaos": _cmd_chaos,
        "audit": _cmd_audit,
        "trace": _cmd_trace,
        "obs": _cmd_obs,
        "report": _cmd_report,
        "methods": _cmd_methods,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
